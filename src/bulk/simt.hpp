// SIMT-style bulk GCD engine (Section VI).
//
// Emulates the paper's CUDA execution on the CPU: a batch of lanes (threads)
// advances in warp lockstep, one algorithm iteration per round, over
// column-wise state (bulk/layout.hpp). Finished lanes are predicated off,
// exactly like divergent threads in a warp. The engine
//   * runs the three GPU algorithms of Table V — Binary, Fast Binary,
//     Approximate — in non- and early-terminate modes;
//   * reuses the identical fused kernels as the scalar engine (they are
//     accessor-generic), so results are bit-identical by construction;
//   * records warp-divergence statistics: per warp round, how many distinct
//     branches the active lanes took (a SIMT machine serializes them), which
//     quantifies §VII's observation that branch divergence hurts Binary
//     Euclidean while Approximate Euclidean is essentially divergence-free.
//
// Two execution modes share one set of per-lane step functions (LaneState):
//   * run()        — the warp-lockstep round loop above (reference path);
//   * run_staged() — each lane runs to completion before the next starts,
//     like one CUDA thread looping its pair to termination (the kernel shape
//     in docs/GPU_PORTING.md). Per-lane branch traces are recorded and the
//     lockstep warp statistics are reconstructed exactly, so results AND
//     stats are bit-identical to run() while the hot loop keeps its state in
//     registers instead of re-reading lane vectors every round.
// Staged batches are refreshed from CorpusPanels via load_panel() /
// broadcast_y() / reset_lane_state() — one contiguous copy per block instead
// of r strided per-lane fills with their normalization scans.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bulk/layout.hpp"
#include "bulk/simt_stats.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/approx.hpp"
#include "gcd/kernels.hpp"

namespace bulkgcd::bulk {

/// A batch of GCD lanes executed in warp lockstep.
/// Matrix selects the memory layout: ColumnMatrix (the paper's coalesced
/// arrangement, default) or RowMatrix (the serialized baseline).
template <mp::LimbType Limb, template <class> class Matrix = ColumnMatrix>
class SimtBatch {
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  static constexpr int LB = mp::limb_bits<Limb>;

 public:
  /// Sentinel for load(): the lane inherits run()'s batch-wide early_bits.
  static constexpr std::size_t kInheritEarlyBits = std::size_t(-1);

  /// capacity_limbs: max limb count of any input value.
  SimtBatch(std::size_t lanes, std::size_t capacity_limbs,
            std::size_t warp_width = 32)
      : lanes_(lanes),
        cap_(capacity_limbs + kBatchPadLimbs),
        warp_(warp_width),
        mat_a_(lanes, cap_),
        mat_b_(lanes, cap_),
        lx_(lanes, 0),
        ly_(lanes, 0),
        early_(lanes, kInheritEarlyBits),
        eff_early_(lanes, 0),
        swapped_(lanes, 0),
        active_(lanes, 0) {
    if (warp_width == 0) throw std::invalid_argument("warp width must be > 0");
  }

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t capacity() const noexcept { return cap_ - kBatchPadLimbs; }
  /// Input bytes a GPU would copy host→device for this batch.
  std::size_t input_bytes() const noexcept {
    return mat_a_.bytes() + mat_b_.bytes();
  }

  /// Load one pair into a lane (and mark it active). Values must be odd.
  /// early_bits: per-lane early-terminate threshold (Section V defines s per
  /// key pair, so mixed-size batches need a per-lane value); the default
  /// inherits the batch-wide threshold passed to run().
  void load(std::size_t lane, std::span<const Limb> x, std::span<const Limb> y,
            std::size_t early_bits = kInheritEarlyBits) {
    assert(lane < lanes_);
    early_[lane] = early_bits;
    if (x.size() > capacity() || y.size() > capacity()) {
      throw std::length_error("SimtBatch: input exceeds capacity");
    }
    mat_a_.fill_lane(lane, x.data(), x.size());
    mat_b_.fill_lane(lane, y.data(), y.size());
    // fill_lane zeroes every row above the value, so the whole matrix must be
    // assumed dirty afterwards only up to capacity; panel refreshes that
    // follow a per-lane load fall back to a full-height copy.
    x_rows_ = cap_;
    y_rows_ = cap_;
    lx_[lane] = gcd::acc_normalized_size(mat_a_.lane(lane), x.size());
    ly_[lane] = gcd::acc_normalized_size(mat_b_.lane(lane), y.size());
    swapped_[lane] = 0;
    if (gcd::acc_compare(mat_a_.lane(lane), lx_[lane], mat_b_.lane(lane),
                         ly_[lane]) < 0) {
      swap_lane(lane);
    }
    active_[lane] = 1;
  }

  /// Stage the whole X side from a CorpusPanels panel in one contiguous copy
  /// (column-major layouts only — the panel and the matrix share their
  /// geometry, so rows [0, rows) transfer verbatim). sizes carries the
  /// pre-normalized limb counts, replacing the per-lane normalization scan of
  /// load(). Rows above `rows` that a previous run may have dirtied are
  /// zeroed lazily (tracked, so steady-state refreshes touch nothing extra).
  void load_panel(std::span<const Limb> panel,
                  std::span<const std::size_t> sizes, std::size_t rows) {
    if constexpr (!Matrix<Limb>::kColumnMajor) {
      throw std::logic_error("load_panel requires the column-major layout");
    } else {
      if (rows > cap_ || panel.size() < rows * lanes_ ||
          sizes.size() != lanes_) {
        throw std::invalid_argument(
            "SimtBatch: panel does not fit this batch");
      }
      auto dst = mat_a_.storage();
      std::copy_n(panel.data(), rows * lanes_, dst.data());
      if (x_rows_ > rows) {
        std::fill(dst.begin() + std::ptrdiff_t(rows * lanes_),
                  dst.begin() + std::ptrdiff_t(x_rows_ * lanes_), Limb{0});
      }
      x_rows_ = rows;
      std::copy_n(sizes.data(), lanes_, lx_.data());
    }
  }

  /// Stage the Y side: every lane of a block shares the same second operand
  /// (the j-group member of the current round), so a single row-wise fill
  /// replaces r strided fill_lane calls. y must be normalized (BigInt limbs).
  void broadcast_y(std::span<const Limb> y) {
    if constexpr (!Matrix<Limb>::kColumnMajor) {
      throw std::logic_error("broadcast_y requires the column-major layout");
    } else {
      if (y.size() > capacity()) {
        throw std::length_error("SimtBatch: input exceeds capacity");
      }
      auto dst = mat_b_.storage();
      for (std::size_t i = 0; i < y.size(); ++i) {
        std::fill_n(dst.data() + i * lanes_, lanes_, y[i]);
      }
      if (y_rows_ > y.size()) {
        std::fill(dst.begin() + std::ptrdiff_t(y.size() * lanes_),
                  dst.begin() + std::ptrdiff_t(y_rows_ * lanes_), Limb{0});
      }
      // A run may write one row above the staged value (β > 0 kernel).
      y_rows_ = std::min(cap_, y.size() + 1);
      std::fill_n(ly_.data(), lanes_, y.size());
    }
  }

  /// Re-arm one lane after load_panel()/broadcast_y(): set its threshold,
  /// restore the X ≥ Y invariant (same compare/swap as load()), and mark it
  /// active. Must be called for every lane that participates in the next run.
  void reset_lane_state(std::size_t lane,
                        std::size_t early_bits = kInheritEarlyBits) {
    assert(lane < lanes_);
    early_[lane] = early_bits;
    swapped_[lane] = 0;
    if (gcd::acc_compare(mat_a_.lane(lane), lx_[lane], mat_b_.lane(lane),
                         ly_[lane]) < 0) {
      swap_lane(lane);
    }
    active_[lane] = 1;
  }

  /// Mark a lane as unused (padding at the tail of a block).
  void disable(std::size_t lane) noexcept { active_[lane] = 0; }

  /// Run all active lanes to completion in warp lockstep.
  /// Supported variants: kBinary, kFastBinary, kApproximate (the GPU
  /// algorithms of Table V).
  void run(gcd::Variant variant, std::size_t early_bits = 0) {
    check_variant(variant);
    resolve_early(early_bits);
    bool any = true;
    while (any) {
      any = false;
      bool round_counted = false;
      for (std::size_t base = 0; base < lanes_; base += warp_) {
        const std::size_t end = std::min(base + warp_, lanes_);
        std::uint32_t branch_mask = 0;
        std::size_t active_count = 0;
        for (std::size_t lane = base; lane < end; ++lane) {
          if (!active_[lane]) continue;
          LaneState s = lane_state(lane);
          if (!keeps_going(s, eff_early_[lane])) {
            active_[lane] = 0;
            continue;
          }
          const int branch = step(s, variant, eff_early_[lane]);
          store_lane(lane, s);
          branch_mask |= 1u << branch;
          ++active_count;
          ++stats_.lane_iterations;
          any = true;
        }
        if (active_count > 0) {
          if (!round_counted) {
            ++stats_.rounds;
            round_counted = true;
          }
          ++stats_.warp_rounds;
          const int branches = std::popcount(branch_mask);
          stats_.branch_slots += branches;
          if (branches > 1) ++stats_.divergent_warp_rounds;
          stats_.active_lane_slots += active_count;
          stats_.lane_slots += warp_;
        }
      }
    }
  }

  /// Run all active lanes to completion, one lane at a time — the shape of
  /// the real CUDA kernel, where each thread loops its own pair until done
  /// and the warp scheduler (not the host loop) interleaves them. Uses the
  /// identical LaneState step functions as run(), so final lane states and
  /// per-algorithm GcdStats match bit for bit; the warp-level counters
  /// (rounds, divergence, utilization) are reconstructed exactly from the
  /// recorded per-lane branch traces — see replay_warp_stats().
  void run_staged(gcd::Variant variant, std::size_t early_bits = 0) {
    check_variant(variant);
    resolve_early(early_bits);
    if (branch_log_.size() != lanes_) branch_log_.resize(lanes_);
    switch (variant) {
      case gcd::Variant::kBinary:
        run_staged_impl<gcd::Variant::kBinary>();
        break;
      case gcd::Variant::kFastBinary:
        run_staged_impl<gcd::Variant::kFastBinary>();
        break;
      default:
        run_staged_impl<gcd::Variant::kApproximate>();
        break;
    }
    replay_warp_stats(branch_log_, lanes_, warp_, stats_);
  }

  /// True when the lane's run terminated early with Y still nonzero — the
  /// pair is coprime (Section V).
  bool early_coprime(std::size_t lane) const noexcept { return ly_[lane] > 0; }

  /// The lane's GCD (valid when !early_coprime).
  mp::BigIntT<Limb> gcd_of(std::size_t lane) const {
    std::vector<Limb> limbs(lx_[lane]);
    auto x = x_lane(lane);
    for (std::size_t i = 0; i < lx_[lane]; ++i) limbs[i] = x[i];
    return mp::BigIntT<Limb>::from_limbs(limbs);
  }

  const SimtStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SimtStats{}; }

  /// Iterations the lane executed in the most recent run_staged() — the
  /// length of its recorded branch trace (0 before any staged run, or for a
  /// disabled lane). This is the per-pair iteration count §IV aggregates
  /// into Table IV; the telemetry layer feeds it into the
  /// iterations-per-pair histogram without touching the hot loop.
  std::size_t staged_lane_iterations(std::size_t lane) const noexcept {
    return lane < branch_log_.size() ? branch_log_[lane].size() : 0;
  }

 private:
  /// Register-resident view of one lane's algorithm state. Both execution
  /// modes advance lanes exclusively through this struct and the shared step
  /// functions below, so they are bit-identical by construction.
  struct LaneState {
    Strided<Limb> x, y;  ///< current X/Y roles (physical arrays may swap)
    std::size_t lx = 0, ly = 0;
    std::uint8_t swapped = 0;
  };

  LaneState lane_state(std::size_t lane) noexcept {
    return {x_lane(lane), y_lane(lane), lx_[lane], ly_[lane], swapped_[lane]};
  }
  void store_lane(std::size_t lane, const LaneState& s) noexcept {
    lx_[lane] = s.lx;
    ly_[lane] = s.ly;
    swapped_[lane] = s.swapped;
  }

  static void check_variant(gcd::Variant variant) {
    if (variant != gcd::Variant::kBinary &&
        variant != gcd::Variant::kFastBinary &&
        variant != gcd::Variant::kApproximate) {
      throw std::invalid_argument("SimtBatch: unsupported variant");
    }
  }

  void resolve_early(std::size_t early_bits) noexcept {
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      eff_early_[lane] =
          early_[lane] == kInheritEarlyBits ? early_bits : early_[lane];
    }
  }

  // flatten: inline the step functions and fused kernels into the lane loop
  // so per-iteration state (accessor bases, sizes, carries) stays in
  // registers — the point of running each lane to completion.
  template <gcd::Variant V>
#if defined(__GNUC__)
  [[gnu::flatten]]
#endif
  void run_staged_impl() {
    // Accumulate algorithm stats in a local and fold into stats_ once: the
    // flattened loop keeps the counters in registers instead of issuing
    // read-modify-writes against the member on every iteration. Totals are
    // identical (pure sums).
    gcd::GcdStats tally;
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      auto& log = branch_log_[lane];
      if (log.capacity() < 160) log.reserve(160);
      log.clear();
      if (!active_[lane]) continue;
      LaneState s = lane_state(lane);
      const std::size_t early = eff_early_[lane];
      const bool use_case4 = section_v(early);  // loop-invariant per lane
      while (keeps_going(s, early)) {
        ++tally.iterations;
        int branch;
        if constexpr (V == gcd::Variant::kBinary) {
          branch = step_binary(s, tally);
        } else if constexpr (V == gcd::Variant::kFastBinary) {
          branch = step_fast_binary(s, tally);
        } else {
          branch = step_approximate(s, use_case4, tally);
        }
        log.push_back(std::uint8_t(branch));
      }
      store_lane(lane, s);
      active_[lane] = 0;
      stats_.lane_iterations += log.size();
    }
    stats_.gcd += tally;
  }

  Strided<Limb> x_lane(std::size_t lane) noexcept {
    return swapped_[lane] ? mat_b_.lane(lane) : mat_a_.lane(lane);
  }
  Strided<Limb> y_lane(std::size_t lane) noexcept {
    return swapped_[lane] ? mat_a_.lane(lane) : mat_b_.lane(lane);
  }
  ConstStrided<Limb> x_lane(std::size_t lane) const noexcept {
    return swapped_[lane] ? mat_b_.lane(lane) : mat_a_.lane(lane);
  }

  void swap_lane(std::size_t lane) noexcept {
    swapped_[lane] ^= 1;
    std::swap(lx_[lane], ly_[lane]);
  }

  static void swap_lane(LaneState& s) noexcept {
    std::swap(s.x, s.y);
    std::swap(s.lx, s.ly);
    s.swapped ^= 1;
  }

  bool keeps_going(const LaneState& s, std::size_t early_bits) const noexcept {
    if (s.ly == 0) return false;
    if (early_bits == 0) return true;
    const std::size_t top = s.ly - 1;
    // The top limb holds 1..LB bits, so the limb count alone usually decides
    // — only read the (strided) top limb when Y straddles the threshold.
    if (top * LB >= early_bits) return true;
    if (s.ly * LB < early_bits) return false;
    const std::size_t bits = top * LB + (LB - std::countl_zero(s.y[top]));
    return bits >= early_bits;
  }

  /// Section V: with early termination both operands keep >= early_bits
  /// bits, so when that guarantees > 2 words the restricted Case-4-only
  /// approx (the paper's actual CUDA kernel) is used. Per lane, since
  /// lanes may carry different thresholds in a mixed-size batch.
  static bool section_v(std::size_t early_bits) noexcept {
    return early_bits >= 3u * std::size_t(LB);
  }

  /// One algorithm iteration on one lane; returns the branch id taken
  /// (0..2) for divergence accounting. Counters land in `gs` so run() can
  /// write stats_.gcd directly while run_staged() tallies into a register-
  /// resident local (folded in once per batch).
  int step(LaneState& s, gcd::Variant variant, std::size_t early_bits) {
    ++stats_.gcd.iterations;
    switch (variant) {
      case gcd::Variant::kBinary: return step_binary(s, stats_.gcd);
      case gcd::Variant::kFastBinary: return step_fast_binary(s, stats_.gcd);
      default: return step_approximate(s, section_v(early_bits), stats_.gcd);
    }
  }

  int step_binary(LaneState& s, gcd::GcdStats& gs) {
    int branch;
    if ((s.x[0] & 1u) == 0) {
      s.lx = gcd::halve(s.x, s.lx, null_tracer_);
      branch = 0;
    } else if ((s.y[0] & 1u) == 0) {
      s.ly = gcd::halve(s.y, s.ly, null_tracer_);
      branch = 1;
    } else {
      s.lx = gcd::sub_halve(s.x, s.lx, s.y, s.ly, null_tracer_);
      branch = 2;
    }
    swap_if_less(s, gs);
    return branch;
  }

  int step_fast_binary(LaneState& s, gcd::GcdStats& gs) {
    s.lx = gcd::fused_submul_strip(s.x, s.lx, s.y, s.ly, Limb{1},
                                   null_tracer_);
    swap_if_less(s, gs);
    return 0;
  }

  int step_approximate(LaneState& s, bool use_case4, gcd::GcdStats& gs) {
    const auto ar = use_case4
                        ? gcd::approx_case4_only(s.x, s.lx, s.y, s.ly)
                        : gcd::approx(s.x, s.lx, s.y, s.ly);
    gs.count_case(ar.which);
    ++gs.divisions;
    int branch;
    if (ar.which == gcd::ApproxCase::k1) {
      // Register-resident tail (only reachable in non-terminate runs).
      const Wide xv = s.lx == 2 ? gcd::top_two_words(s.x, 2) : Wide(s.x[0]);
      const Wide yv = s.ly == 2 ? gcd::top_two_words(s.y, 2) : Wide(s.y[0]);
      Wide alpha = ar.alpha;
      if ((alpha & 1u) == 0) --alpha;
      Wide t = xv - yv * alpha;
      if (t != 0) t >>= gcd::wide_ctz(t);
      std::size_t n = 0;
      while (t != 0) {
        s.x[n++] = Limb(t);
        t >>= LB;
      }
      s.lx = n;
      branch = 2;
    } else if (ar.beta == 0) {
      Limb alpha = Limb(ar.alpha);
      if ((alpha & 1u) == 0) --alpha;
      s.lx = gcd::fused_submul_strip(s.x, s.lx, s.y, s.ly, alpha,
                                     null_tracer_);
      branch = 0;
    } else {
      ++gs.beta_nonzero;
      s.lx = gcd::fused_submul_shifted_add_strip(
          s.x, s.lx, s.y, s.ly, Limb(ar.alpha), ar.beta, null_tracer_);
      branch = 1;
    }
    swap_if_less(s, gs);
    return branch;
  }

  void swap_if_less(LaneState& s, gcd::GcdStats& gs) {
    if (gcd::acc_compare(s.x, s.lx, s.y, s.ly) < 0) {
      swap_lane(s);
      ++gs.swaps;
    }
  }

  std::size_t lanes_, cap_, warp_;
  Matrix<Limb> mat_a_, mat_b_;
  std::vector<std::size_t> lx_, ly_;
  std::vector<std::size_t> early_;      ///< per-lane override from load()
  std::vector<std::size_t> eff_early_;  ///< resolved threshold for this run()
  std::vector<std::uint8_t> swapped_, active_;
  // Dirty-row watermarks: rows of mat_a_/mat_b_ that may hold nonzero limbs.
  // Kernel writes never land above a value's initial size (the β > 0 case
  // writes exactly one limb past the *current* size, which only shrinks), so
  // a panel refresh of `rows` rows leaves anything above untouched — and the
  // watermark tells load_panel()/broadcast_y() how much of that residue must
  // be zeroed. Fresh matrices are all-zero.
  std::size_t x_rows_ = 0, y_rows_ = 0;
  std::vector<std::vector<std::uint8_t>> branch_log_;  ///< staged traces
  SimtStats stats_;
  gcd::NullTracer null_tracer_;
};

extern template class SimtBatch<std::uint32_t, ColumnMatrix>;
extern template class SimtBatch<std::uint32_t, RowMatrix>;
extern template class SimtBatch<std::uint64_t, ColumnMatrix>;
extern template class SimtBatch<std::uint64_t, RowMatrix>;

}  // namespace bulkgcd::bulk
