// SIMT-style bulk GCD engine (Section VI).
//
// Emulates the paper's CUDA execution on the CPU: a batch of lanes (threads)
// advances in warp lockstep, one algorithm iteration per round, over
// column-wise state (bulk/layout.hpp). Finished lanes are predicated off,
// exactly like divergent threads in a warp. The engine
//   * runs the three GPU algorithms of Table V — Binary, Fast Binary,
//     Approximate — in non- and early-terminate modes;
//   * reuses the identical fused kernels as the scalar engine (they are
//     accessor-generic), so results are bit-identical by construction;
//   * records warp-divergence statistics: per warp round, how many distinct
//     branches the active lanes took (a SIMT machine serializes them), which
//     quantifies §VII's observation that branch divergence hurts Binary
//     Euclidean while Approximate Euclidean is essentially divergence-free.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bulk/layout.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/approx.hpp"
#include "gcd/kernels.hpp"

namespace bulkgcd::bulk {

struct SimtStats {
  std::uint64_t rounds = 0;            ///< lockstep rounds executed
  std::uint64_t warp_rounds = 0;       ///< (warp, round) pairs with a live lane
  std::uint64_t lane_iterations = 0;   ///< algorithm iterations across lanes
  std::uint64_t branch_slots = 0;      ///< Σ distinct branches per warp round
  std::uint64_t divergent_warp_rounds = 0;  ///< warp rounds with > 1 branch
  std::uint64_t active_lane_slots = 0; ///< Σ active lanes per warp round
  std::uint64_t lane_slots = 0;        ///< Σ warp width per warp round
  gcd::GcdStats gcd;                   ///< aggregated algorithm statistics

  /// Mean number of serialized branch groups per warp round (1.0 = no
  /// divergence; Binary Euclidean approaches its 3-way case split).
  double serialization_factor() const noexcept {
    return warp_rounds == 0 ? 1.0
                            : double(branch_slots) / double(warp_rounds);
  }
  /// Fraction of lane slots doing useful work (predication utilization).
  double lane_utilization() const noexcept {
    return lane_slots == 0 ? 1.0
                           : double(active_lane_slots) / double(lane_slots);
  }

  SimtStats& operator+=(const SimtStats& o) noexcept {
    rounds += o.rounds;
    warp_rounds += o.warp_rounds;
    lane_iterations += o.lane_iterations;
    branch_slots += o.branch_slots;
    divergent_warp_rounds += o.divergent_warp_rounds;
    active_lane_slots += o.active_lane_slots;
    lane_slots += o.lane_slots;
    gcd += o.gcd;
    return *this;
  }
};

/// A batch of GCD lanes executed in warp lockstep.
/// Matrix selects the memory layout: ColumnMatrix (the paper's coalesced
/// arrangement, default) or RowMatrix (the serialized baseline).
template <mp::LimbType Limb, template <class> class Matrix = ColumnMatrix>
class SimtBatch {
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  static constexpr int LB = mp::limb_bits<Limb>;

 public:
  /// Sentinel for load(): the lane inherits run()'s batch-wide early_bits.
  static constexpr std::size_t kInheritEarlyBits = std::size_t(-1);

  /// capacity_limbs: max limb count of any input value.
  SimtBatch(std::size_t lanes, std::size_t capacity_limbs,
            std::size_t warp_width = 32)
      : lanes_(lanes),
        cap_(capacity_limbs + 2),
        warp_(warp_width),
        mat_a_(lanes, cap_),
        mat_b_(lanes, cap_),
        lx_(lanes, 0),
        ly_(lanes, 0),
        early_(lanes, kInheritEarlyBits),
        eff_early_(lanes, 0),
        swapped_(lanes, 0),
        active_(lanes, 0) {
    if (warp_width == 0) throw std::invalid_argument("warp width must be > 0");
  }

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t capacity() const noexcept { return cap_ - 2; }
  /// Input bytes a GPU would copy host→device for this batch.
  std::size_t input_bytes() const noexcept {
    return mat_a_.bytes() + mat_b_.bytes();
  }

  /// Load one pair into a lane (and mark it active). Values must be odd.
  /// early_bits: per-lane early-terminate threshold (Section V defines s per
  /// key pair, so mixed-size batches need a per-lane value); the default
  /// inherits the batch-wide threshold passed to run().
  void load(std::size_t lane, std::span<const Limb> x, std::span<const Limb> y,
            std::size_t early_bits = kInheritEarlyBits) {
    assert(lane < lanes_);
    early_[lane] = early_bits;
    if (x.size() > capacity() || y.size() > capacity()) {
      throw std::length_error("SimtBatch: input exceeds capacity");
    }
    mat_a_.fill_lane(lane, x.data(), x.size());
    mat_b_.fill_lane(lane, y.data(), y.size());
    lx_[lane] = gcd::acc_normalized_size(mat_a_.lane(lane), x.size());
    ly_[lane] = gcd::acc_normalized_size(mat_b_.lane(lane), y.size());
    swapped_[lane] = 0;
    if (gcd::acc_compare(mat_a_.lane(lane), lx_[lane], mat_b_.lane(lane),
                         ly_[lane]) < 0) {
      swap_lane(lane);
    }
    active_[lane] = 1;
  }

  /// Mark a lane as unused (padding at the tail of a block).
  void disable(std::size_t lane) noexcept { active_[lane] = 0; }

  /// Run all active lanes to completion in warp lockstep.
  /// Supported variants: kBinary, kFastBinary, kApproximate (the GPU
  /// algorithms of Table V).
  void run(gcd::Variant variant, std::size_t early_bits = 0) {
    if (variant != gcd::Variant::kBinary &&
        variant != gcd::Variant::kFastBinary &&
        variant != gcd::Variant::kApproximate) {
      throw std::invalid_argument("SimtBatch: unsupported variant");
    }
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      eff_early_[lane] =
          early_[lane] == kInheritEarlyBits ? early_bits : early_[lane];
    }
    bool any = true;
    while (any) {
      any = false;
      bool round_counted = false;
      for (std::size_t base = 0; base < lanes_; base += warp_) {
        const std::size_t end = std::min(base + warp_, lanes_);
        std::uint32_t branch_mask = 0;
        std::size_t active_count = 0;
        for (std::size_t lane = base; lane < end; ++lane) {
          if (!active_[lane]) continue;
          if (!lane_keeps_going(lane)) {
            active_[lane] = 0;
            continue;
          }
          const int branch = step_lane(lane, variant);
          branch_mask |= 1u << branch;
          ++active_count;
          ++stats_.lane_iterations;
          any = true;
        }
        if (active_count > 0) {
          if (!round_counted) {
            ++stats_.rounds;
            round_counted = true;
          }
          ++stats_.warp_rounds;
          const int branches = std::popcount(branch_mask);
          stats_.branch_slots += branches;
          if (branches > 1) ++stats_.divergent_warp_rounds;
          stats_.active_lane_slots += active_count;
          stats_.lane_slots += warp_;
        }
      }
    }
  }

  /// True when the lane's run terminated early with Y still nonzero — the
  /// pair is coprime (Section V).
  bool early_coprime(std::size_t lane) const noexcept { return ly_[lane] > 0; }

  /// The lane's GCD (valid when !early_coprime).
  mp::BigIntT<Limb> gcd_of(std::size_t lane) const {
    std::vector<Limb> limbs(lx_[lane]);
    auto x = x_lane(lane);
    for (std::size_t i = 0; i < lx_[lane]; ++i) limbs[i] = x[i];
    return mp::BigIntT<Limb>::from_limbs(limbs);
  }

  const SimtStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SimtStats{}; }

 private:
  Strided<Limb> x_lane(std::size_t lane) noexcept {
    return swapped_[lane] ? mat_b_.lane(lane) : mat_a_.lane(lane);
  }
  Strided<Limb> y_lane(std::size_t lane) noexcept {
    return swapped_[lane] ? mat_a_.lane(lane) : mat_b_.lane(lane);
  }
  ConstStrided<Limb> x_lane(std::size_t lane) const noexcept {
    return swapped_[lane] ? mat_b_.lane(lane) : mat_a_.lane(lane);
  }

  void swap_lane(std::size_t lane) noexcept {
    swapped_[lane] ^= 1;
    std::swap(lx_[lane], ly_[lane]);
  }

  bool lane_keeps_going(std::size_t lane) noexcept {
    if (ly_[lane] == 0) return false;
    const std::size_t early_bits = eff_early_[lane];
    if (early_bits == 0) return true;
    auto y = y_lane(lane);
    const std::size_t top = ly_[lane] - 1;
    const std::size_t bits =
        top * LB + (LB - std::countl_zero(y[top]));
    return bits >= early_bits;
  }

  /// Section V: with early termination both operands keep >= early_bits
  /// bits, so when that guarantees > 2 words the restricted Case-4-only
  /// approx (the paper's actual CUDA kernel) is used. Per lane, since
  /// lanes may carry different thresholds in a mixed-size batch.
  bool section_v_lane(std::size_t lane) const noexcept {
    return eff_early_[lane] >= 3u * std::size_t(LB);
  }

  /// One algorithm iteration on one lane; returns the branch id taken
  /// (0..2) for divergence accounting.
  int step_lane(std::size_t lane, gcd::Variant variant) {
    ++stats_.gcd.iterations;
    switch (variant) {
      case gcd::Variant::kBinary: return step_binary(lane);
      case gcd::Variant::kFastBinary: return step_fast_binary(lane);
      default: return step_approximate(lane);
    }
  }

  int step_binary(std::size_t lane) {
    auto x = x_lane(lane);
    auto y = y_lane(lane);
    int branch;
    if ((x[0] & 1u) == 0) {
      lx_[lane] = gcd::halve(x, lx_[lane], null_tracer_);
      branch = 0;
    } else if ((y[0] & 1u) == 0) {
      ly_[lane] = gcd::halve(y, ly_[lane], null_tracer_);
      branch = 1;
    } else {
      lx_[lane] = gcd::sub_halve(x, lx_[lane], y, ly_[lane], null_tracer_);
      branch = 2;
    }
    swap_if_less(lane);
    return branch;
  }

  int step_fast_binary(std::size_t lane) {
    auto x = x_lane(lane);
    auto y = y_lane(lane);
    lx_[lane] = gcd::fused_submul_strip(x, lx_[lane], y, ly_[lane], Limb{1},
                                        null_tracer_);
    swap_if_less(lane);
    return 0;
  }

  int step_approximate(std::size_t lane) {
    auto x = x_lane(lane);
    auto y = y_lane(lane);
    const auto ar = section_v_lane(lane)
                        ? gcd::approx_case4_only(x, lx_[lane], y, ly_[lane])
                        : gcd::approx(x, lx_[lane], y, ly_[lane]);
    stats_.gcd.count_case(ar.which);
    ++stats_.gcd.divisions;
    int branch;
    if (ar.which == gcd::ApproxCase::k1) {
      // Register-resident tail (only reachable in non-terminate runs).
      const Wide xv = lx_[lane] == 2 ? gcd::top_two_words(x, 2) : Wide(x[0]);
      const Wide yv = ly_[lane] == 2 ? gcd::top_two_words(y, 2) : Wide(y[0]);
      Wide alpha = ar.alpha;
      if ((alpha & 1u) == 0) --alpha;
      Wide t = xv - yv * alpha;
      if (t != 0) t >>= gcd::wide_ctz(t);
      std::size_t n = 0;
      while (t != 0) {
        x[n++] = Limb(t);
        t >>= LB;
      }
      lx_[lane] = n;
      branch = 2;
    } else if (ar.beta == 0) {
      Limb alpha = Limb(ar.alpha);
      if ((alpha & 1u) == 0) --alpha;
      lx_[lane] = gcd::fused_submul_strip(x, lx_[lane], y, ly_[lane], alpha,
                                          null_tracer_);
      branch = 0;
    } else {
      ++stats_.gcd.beta_nonzero;
      lx_[lane] = gcd::fused_submul_shifted_add_strip(
          x, lx_[lane], y, ly_[lane], Limb(ar.alpha), ar.beta, null_tracer_);
      branch = 1;
    }
    swap_if_less(lane);
    return branch;
  }

  void swap_if_less(std::size_t lane) {
    auto x = x_lane(lane);
    auto y = y_lane(lane);
    if (gcd::acc_compare(x, lx_[lane], y, ly_[lane]) < 0) {
      swap_lane(lane);
      ++stats_.gcd.swaps;
    }
  }

  std::size_t lanes_, cap_, warp_;
  Matrix<Limb> mat_a_, mat_b_;
  std::vector<std::size_t> lx_, ly_;
  std::vector<std::size_t> early_;      ///< per-lane override from load()
  std::vector<std::size_t> eff_early_;  ///< resolved threshold for this run()
  std::vector<std::uint8_t> swapped_, active_;
  SimtStats stats_;
  gcd::NullTracer null_tracer_;
};

extern template class SimtBatch<std::uint32_t, ColumnMatrix>;
extern template class SimtBatch<std::uint32_t, RowMatrix>;

}  // namespace bulkgcd::bulk
