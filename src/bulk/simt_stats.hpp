// Warp-level execution statistics shared by every bulk engine (Section VI).
//
// SimtStats is the contract between the three execution shapes of the SIMT
// batch — lockstep run(), lane-serial run_staged(), and the W-lane vector
// engine (bulk/vec/) — and everything that consumes engine statistics
// (AllPairsResult, telemetry counters, checkpoint journals). The staged and
// vector engines do not execute in warp lockstep, so they reconstruct the
// lockstep counters exactly from recorded per-lane branch traces via
// replay_warp_stats(): every counter of the lockstep loop is a pure function
// of {iterations-per-lane, branch-id trace per lane}, so engines that agree
// on the traces agree on the stats bit for bit.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gcd/stats.hpp"

namespace bulkgcd::bulk {

struct SimtStats {
  std::uint64_t rounds = 0;            ///< lockstep rounds executed
  std::uint64_t warp_rounds = 0;       ///< (warp, round) pairs with a live lane
  std::uint64_t lane_iterations = 0;   ///< algorithm iterations across lanes
  std::uint64_t branch_slots = 0;      ///< Σ distinct branches per warp round
  std::uint64_t divergent_warp_rounds = 0;  ///< warp rounds with > 1 branch
  std::uint64_t active_lane_slots = 0; ///< Σ active lanes per warp round
  std::uint64_t lane_slots = 0;        ///< Σ warp width per warp round
  gcd::GcdStats gcd;                   ///< aggregated algorithm statistics

  /// Mean number of serialized branch groups per warp round (1.0 = no
  /// divergence; Binary Euclidean approaches its 3-way case split).
  double serialization_factor() const noexcept {
    return warp_rounds == 0 ? 1.0
                            : double(branch_slots) / double(warp_rounds);
  }
  /// Fraction of lane slots doing useful work (predication utilization).
  double lane_utilization() const noexcept {
    return lane_slots == 0 ? 1.0
                           : double(active_lane_slots) / double(lane_slots);
  }

  SimtStats& operator+=(const SimtStats& o) noexcept {
    rounds += o.rounds;
    warp_rounds += o.warp_rounds;
    lane_iterations += o.lane_iterations;
    branch_slots += o.branch_slots;
    divergent_warp_rounds += o.divergent_warp_rounds;
    active_lane_slots += o.active_lane_slots;
    lane_slots += o.lane_slots;
    gcd += o.gcd;
    return *this;
  }

  friend bool operator==(const SimtStats&, const SimtStats&) noexcept =
      default;
};

/// Replay recorded branch traces through the lockstep accounting of
/// SimtBatch::run(). In the round loop, warp w is counted for round t iff
/// some lane in it still has an iteration to execute (t < n_lane); the
/// branch mask of that round is exactly the set of branch ids those lanes
/// logged at index t; and the global round counter advances while any warp
/// is live, i.e. max over lanes of n_lane times. So every counter of run()
/// is a pure function of {n_lane, trace_lane} and can be rebuilt without
/// lockstep execution. branch_log must hold `lanes` traces (one per lane,
/// empty for disabled lanes); warp is the accounting warp width, NOT the
/// executing engine's physical group width.
inline void replay_warp_stats(
    const std::vector<std::vector<std::uint8_t>>& branch_log,
    std::size_t lanes, std::size_t warp, SimtStats& stats) noexcept {
  std::uint64_t global_rounds = 0;
  for (std::size_t base = 0; base < lanes; base += warp) {
    const std::size_t end = std::min(base + warp, lanes);
    std::size_t warp_max = 0;
    for (std::size_t lane = base; lane < end; ++lane) {
      warp_max = std::max(warp_max, branch_log[lane].size());
    }
    global_rounds = std::max<std::uint64_t>(global_rounds, warp_max);
    for (std::size_t t = 0; t < warp_max; ++t) {
      std::uint32_t branch_mask = 0;
      std::size_t active_count = 0;
      for (std::size_t lane = base; lane < end; ++lane) {
        if (t < branch_log[lane].size()) {
          branch_mask |= 1u << branch_log[lane][t];
          ++active_count;
        }
      }
      ++stats.warp_rounds;
      const int branches = std::popcount(branch_mask);
      stats.branch_slots += branches;
      if (branches > 1) ++stats.divergent_warp_rounds;
      stats.active_lane_slots += active_count;
      stats.lane_slots += warp;
    }
  }
  stats.rounds += global_rounds;
}

}  // namespace bulkgcd::bulk
