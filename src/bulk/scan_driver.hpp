// Resumable, fault-tolerant driver for the Section-VI all-pairs scan.
//
// The paper's attack is a weeks-long sweep over millions of moduli; at that
// scale the scan MUST survive crashes, preemption, and the occasional bad
// worker. The driver decomposes the block triangle (bulk/block_grid.hpp)
// into durable work units of `chunk_blocks` consecutive blocks and layers
// three robustness mechanisms on top of the raw sweep:
//
//   * Checkpointing — an append-only binary journal (docs/SCAN_DRIVER.md)
//     records every committed chunk with its hits and engine statistics,
//     fsynced at a configurable cadence. On restart the journal is validated
//     against a corpus digest (rsa::corpus_digest) and the scan resumes from
//     the committed set, re-running at most the chunks that were in flight.
//   * Retry with isolation — a chunk whose worker throws is retried once on
//     the scalar engine (the simplest, most conservative code path); a
//     second failure quarantines the chunk and the scan continues, instead
//     of one poisoned work unit aborting a multi-day run.
//   * Structured progress — blocks/s, pairs/s, ETA, and hit counts stream
//     through a pluggable ProgressSink (stdout line printer included).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bulk/allpairs.hpp"

namespace bulkgcd::bulk {

/// One structured progress record, emitted after chunk commits.
struct ScanProgress {
  std::uint64_t chunks_done = 0;    ///< committed chunks (incl. restored)
  std::uint64_t chunks_total = 0;
  std::uint64_t blocks_done = 0;    ///< blocks covered by committed chunks
  std::uint64_t blocks_total = 0;
  std::uint64_t pairs_done = 0;     ///< pairs covered by committed chunks
  std::uint64_t pairs_total = 0;    ///< m(m−1)/2
  std::uint64_t hits = 0;           ///< factor hits found so far
  std::uint64_t quarantined = 0;    ///< chunks given up on
  double elapsed_seconds = 0.0;     ///< this run (excludes prior runs)
  double blocks_per_second = 0.0;   ///< this run's committed-block rate
  double pairs_per_second = 0.0;    ///< this run's committed-pair rate
  double eta_seconds = 0.0;         ///< remaining pairs / pairs_per_second
};

/// Receiver for scan telemetry. Callbacks fire on the driver thread, in
/// commit order; implementations must not throw.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void on_progress(const ScanProgress&) {}
  virtual void on_hit(const FactorHit&) {}
  virtual void on_quarantine(std::size_t /*chunk_index*/,
                             const std::string& /*error*/) {}
};

/// Line-oriented progress printer for CLIs (one status line per record).
class StreamProgressSink : public ProgressSink {
 public:
  explicit StreamProgressSink(std::FILE* out = stdout) : out_(out) {}
  void on_progress(const ScanProgress& p) override;
  void on_hit(const FactorHit& hit) override;
  void on_quarantine(std::size_t chunk_index, const std::string& error) override;

 private:
  std::FILE* out_;
};

/// A work unit the driver gave up on (failed on both engines). Its pair
/// range was NOT scanned; the indices let an operator re-run it offline.
struct QuarantinedChunk {
  std::size_t chunk_index = 0;
  std::string error;
};

struct ScanConfig {
  AllPairsConfig pairs;  ///< engine / variant / group size / threads

  /// Checkpoint journal path; empty runs the scan without durability.
  std::filesystem::path checkpoint;
  /// Blocks per durable work unit. Smaller = finer-grained resume but more
  /// journal records; the default keeps units in the hundreds-of-thousands
  /// of pairs for typical group sizes.
  std::size_t chunk_blocks = 64;
  /// fsync the journal every N chunk commits (1 = every commit).
  std::size_t fsync_every = 1;
  /// Stop (cleanly, checkpoint intact) after launching N chunks this run;
  /// 0 = run to completion. This is the time-sliced / budgeted mode — and
  /// the hook the kill-and-resume tests use.
  std::size_t stop_after_chunks = 0;
  /// On checkpoint/corpus mismatch: true = discard and start fresh,
  /// false = throw std::runtime_error (default — never silently lose the
  /// association between checkpoint and corpus).
  bool discard_mismatched_checkpoint = false;

  ProgressSink* sink = nullptr;
  std::size_t progress_every = 1;  ///< emit a record every N chunk commits

  /// Observability/fault-injection hook, called at the start of every chunk
  /// attempt (attempt 0 = configured engine, 1 = scalar retry). Exceptions
  /// it throws flow through the retry/quarantine path exactly like engine
  /// failures — the tests use this to exercise both.
  std::function<void(std::size_t chunk_index, int attempt)> chunk_hook;
};

struct ScanReport {
  /// Aggregated sweep result including chunks restored from the checkpoint.
  /// `seconds` covers this run only; hits are sorted by (i, j).
  AllPairsResult result;
  bool complete = false;  ///< every chunk committed or quarantined
  bool resumed = false;   ///< a valid checkpoint contributed prior work
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_done = 0;           ///< committed (incl. restored)
  std::uint64_t chunks_done_this_run = 0;  ///< committed by this invocation
  std::vector<QuarantinedChunk> quarantined;
};

/// Run (or resume) the all-pairs scan over `moduli`. See ScanConfig for the
/// durability and fault-tolerance knobs; with an empty checkpoint path and
/// default config this is equivalent to all_pairs_gcd().
ScanReport run_resumable_scan(std::span<const mp::BigInt> moduli,
                              const ScanConfig& config = {});

}  // namespace bulkgcd::bulk
