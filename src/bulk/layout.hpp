// Column-wise data arrangement for bulk execution (the paper's Figure 3).
//
// For p lanes each owning an n-limb array b, element b_t[i] is stored at
// flat index i·p + t: when all lanes touch element i in lockstep, the p
// accesses are consecutive — coalesced on a GPU, and replayed as one address
// group per warp by the UMM simulator. A row-wise matrix is provided as the
// anti-pattern baseline for bench_coalescing.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "mp/limb_traits.hpp"

namespace bulkgcd::bulk {

/// View of one lane's array inside a lane-major or limb-major matrix:
/// lane element i lives at base[i * stride].
template <mp::LimbType Limb>
struct Strided {
  Limb* base;
  std::size_t stride;
  Limb& operator[](std::size_t i) const noexcept { return base[i * stride]; }
};

template <mp::LimbType Limb>
struct ConstStrided {
  const Limb* base;
  std::size_t stride;
  const Limb& operator[](std::size_t i) const noexcept {
    return base[i * stride];
  }
};

/// lanes × limbs matrix, column-wise (limb-major): limb i of lane t at
/// data[i * lanes + t].
template <mp::LimbType Limb>
class ColumnMatrix {
 public:
  ColumnMatrix(std::size_t lanes, std::size_t limbs)
      : lanes_(lanes), limbs_(limbs), data_(lanes * limbs, Limb{0}) {}

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t limbs() const noexcept { return limbs_; }

  Strided<Limb> lane(std::size_t t) noexcept {
    assert(t < lanes_);
    return {data_.data() + t, lanes_};
  }
  ConstStrided<Limb> lane(std::size_t t) const noexcept {
    assert(t < lanes_);
    return {data_.data() + t, lanes_};
  }

  void fill_lane(std::size_t t, const Limb* src, std::size_t n) noexcept {
    assert(n <= limbs_);
    auto acc = lane(t);
    for (std::size_t i = 0; i < n; ++i) acc[i] = src[i];
    for (std::size_t i = n; i < limbs_; ++i) acc[i] = Limb{0};
  }

  std::size_t bytes() const noexcept { return data_.size() * sizeof(Limb); }

 private:
  std::size_t lanes_, limbs_;
  std::vector<Limb> data_;
};

/// lanes × limbs matrix, row-wise (lane-major): limb i of lane t at
/// data[t * limbs + i]. Same interface so the engines are layout-generic.
template <mp::LimbType Limb>
class RowMatrix {
 public:
  RowMatrix(std::size_t lanes, std::size_t limbs)
      : lanes_(lanes), limbs_(limbs), data_(lanes * limbs, Limb{0}) {}

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t limbs() const noexcept { return limbs_; }

  Strided<Limb> lane(std::size_t t) noexcept {
    assert(t < lanes_);
    return {data_.data() + t * limbs_, 1};
  }
  ConstStrided<Limb> lane(std::size_t t) const noexcept {
    assert(t < lanes_);
    return {data_.data() + t * limbs_, 1};
  }

  void fill_lane(std::size_t t, const Limb* src, std::size_t n) noexcept {
    assert(n <= limbs_);
    auto acc = lane(t);
    for (std::size_t i = 0; i < n; ++i) acc[i] = src[i];
    for (std::size_t i = n; i < limbs_; ++i) acc[i] = Limb{0};
  }

  std::size_t bytes() const noexcept { return data_.size() * sizeof(Limb); }

 private:
  std::size_t lanes_, limbs_;
  std::vector<Limb> data_;
};

}  // namespace bulkgcd::bulk
