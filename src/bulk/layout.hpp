// Column-wise data arrangement for bulk execution (the paper's Figure 3).
//
// For p lanes each owning an n-limb array b, element b_t[i] is stored at
// flat index i·p + t: when all lanes touch element i in lockstep, the p
// accesses are consecutive — coalesced on a GPU, and replayed as one address
// group per warp by the UMM simulator. A row-wise matrix is provided as the
// anti-pattern baseline for bench_coalescing.
#pragma once

#include <cassert>
#include <concepts>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "mp/bigint.hpp"
#include "mp/limb_traits.hpp"

namespace bulkgcd::bulk {

/// Rows a batch matrix keeps above the longest input: the β > 0 kernel of
/// Approximate Euclidean writes one limb past the current size
/// (fused_submul_shifted_add_strip), plus one guard row. Shared between
/// SimtBatch and CorpusPanels so staged panels match the batch geometry.
inline constexpr std::size_t kBatchPadLimbs = 2;

/// View of one lane's array inside a lane-major or limb-major matrix:
/// lane element i lives at base[i * stride].
template <mp::LimbType Limb>
struct Strided {
  Limb* base;
  std::size_t stride;
  Limb& operator[](std::size_t i) const noexcept { return base[i * stride]; }
};

template <mp::LimbType Limb>
struct ConstStrided {
  const Limb* base;
  std::size_t stride;
  const Limb& operator[](std::size_t i) const noexcept {
    return base[i * stride];
  }
};

/// lanes × limbs matrix, column-wise (limb-major): limb i of lane t at
/// data[i * lanes + t].
template <mp::LimbType Limb>
class ColumnMatrix {
 public:
  ColumnMatrix(std::size_t lanes, std::size_t limbs)
      : lanes_(lanes), limbs_(limbs), data_(lanes * limbs, Limb{0}) {}

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t limbs() const noexcept { return limbs_; }

  Strided<Limb> lane(std::size_t t) noexcept {
    assert(t < lanes_);
    return {data_.data() + t, lanes_};
  }
  ConstStrided<Limb> lane(std::size_t t) const noexcept {
    assert(t < lanes_);
    return {data_.data() + t, lanes_};
  }

  void fill_lane(std::size_t t, const Limb* src, std::size_t n) noexcept {
    assert(n <= limbs_);
    auto acc = lane(t);
    for (std::size_t i = 0; i < n; ++i) acc[i] = src[i];
    for (std::size_t i = n; i < limbs_; ++i) acc[i] = Limb{0};
  }

  std::size_t bytes() const noexcept { return data_.size() * sizeof(Limb); }

  /// Flat limb-major storage; row i (all lanes' limb i) is the contiguous
  /// range [i * lanes, (i + 1) * lanes). Exposed so staged panel refreshes
  /// can bulk-copy instead of filling lane by lane.
  std::span<Limb> storage() noexcept { return data_; }
  std::span<const Limb> storage() const noexcept { return data_; }

  static constexpr bool kColumnMajor = true;

 private:
  std::size_t lanes_, limbs_;
  std::vector<Limb> data_;
};

/// lanes × limbs matrix, row-wise (lane-major): limb i of lane t at
/// data[t * limbs + i]. Same interface so the engines are layout-generic.
template <mp::LimbType Limb>
class RowMatrix {
 public:
  RowMatrix(std::size_t lanes, std::size_t limbs)
      : lanes_(lanes), limbs_(limbs), data_(lanes * limbs, Limb{0}) {}

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t limbs() const noexcept { return limbs_; }

  Strided<Limb> lane(std::size_t t) noexcept {
    assert(t < lanes_);
    return {data_.data() + t * limbs_, 1};
  }
  ConstStrided<Limb> lane(std::size_t t) const noexcept {
    assert(t < lanes_);
    return {data_.data() + t * limbs_, 1};
  }

  void fill_lane(std::size_t t, const Limb* src, std::size_t n) noexcept {
    assert(n <= limbs_);
    auto acc = lane(t);
    for (std::size_t i = 0; i < n; ++i) acc[i] = src[i];
    for (std::size_t i = n; i < limbs_; ++i) acc[i] = Limb{0};
  }

  std::size_t bytes() const noexcept { return data_.size() * sizeof(Limb); }

  /// Flat lane-major storage (anti-pattern baseline; staged panel loads are
  /// only supported on the column-major layout).
  std::span<Limb> storage() noexcept { return data_; }
  std::span<const Limb> storage() const noexcept { return data_; }

  static constexpr bool kColumnMajor = false;

 private:
  std::size_t lanes_, limbs_;
  std::vector<Limb> data_;
};

/// One-time staging of a scan corpus: per-group panels of limbs laid out
/// exactly like ColumnMatrix (limb i of group member t at panel[i·r + t]),
/// plus cached normalized sizes and bit lengths. This is the CPU analogue of
/// the paper's single host→device corpus copy — after construction, a sweep
/// refreshes a SimtBatch for the next block with one contiguous copy of the
/// group panel instead of r strided per-lane fills, each with its own
/// normalization scan and BigInt indirection.
template <mp::LimbType Limb>
class CorpusPanels {
 public:
  /// padded_limbs must be at least max limb count + kBatchPadLimbs, i.e. the
  /// capacity the consuming SimtBatch was constructed with.
  CorpusPanels(std::span<const mp::BigIntT<Limb>> moduli,
               std::size_t group_size, std::size_t padded_limbs)
      : CorpusPanels(moduli.size(), group_size, padded_limbs) {
    for (std::size_t idx = 0; idx < m_; ++idx) {
      stage(idx, moduli[idx].limbs(), moduli[idx].bit_length());
    }
  }

  /// Same staging from any repacked corpus view (bulk/scan_corpus.hpp) —
  /// the limb width the panels carry need not match the BigInt limb width.
  template <typename Corpus>
    requires requires(const Corpus& c, std::size_t i) {
      { c.size() } -> std::convertible_to<std::size_t>;
      { c.limbs(i) } -> std::convertible_to<std::span<const Limb>>;
      { c.bits(i) } -> std::convertible_to<std::size_t>;
    }
  CorpusPanels(const Corpus& corpus, std::size_t group_size,
               std::size_t padded_limbs)
      : CorpusPanels(corpus.size(), group_size, padded_limbs) {
    for (std::size_t idx = 0; idx < m_; ++idx) {
      stage(idx, corpus.limbs(idx), corpus.bits(idx));
    }
  }

  /// Empty panel set ready for incremental append() — the streaming-intake
  /// fold stages arrivals one by one instead of re-staging the whole corpus
  /// per probe (bulk/staged_corpus.hpp owns the growth policy).
  CorpusPanels(std::size_t group_size, std::size_t padded_limbs)
      : CorpusPanels(0, group_size, padded_limbs) {}

  /// Stage one more modulus at index corpus_size(), growing a fresh group
  /// panel when the current one is full. Appending may reallocate the panel
  /// storage: spans returned by panel()/sizes() before the call are invalid
  /// afterwards (re-fetch per block, as the sweepers already do).
  void append(std::span<const Limb> limbs, std::size_t bits) {
    if (m_ == groups_ * r_) {
      data_.resize(data_.size() + r_ * pad_, Limb{0});
      sizes_.resize(sizes_.size() + r_, 0);
      rows_.push_back(1);
      ++groups_;
    }
    bits_.push_back(0);
    ++m_;
    stage(m_ - 1, limbs, bits);
  }

  std::size_t corpus_size() const noexcept { return m_; }
  std::size_t group_count() const noexcept { return groups_; }
  std::size_t lanes() const noexcept { return r_; }
  std::size_t padded_limbs() const noexcept { return pad_; }

  /// Column-major panel of group g (r_ lanes × pad_ limbs).
  std::span<const Limb> panel(std::size_t g) const noexcept {
    assert(g < groups_);
    return {data_.data() + g * r_ * pad_, r_ * pad_};
  }
  /// Normalized limb counts of group g's members (0 for tail lanes past the
  /// corpus end).
  std::span<const std::size_t> sizes(std::size_t g) const noexcept {
    assert(g < groups_);
    return {sizes_.data() + g * r_, r_};
  }
  /// Rows worth copying for group g: max member size + 1 (the β write row).
  std::size_t rows(std::size_t g) const noexcept {
    assert(g < groups_);
    return rows_[g];
  }
  /// Cached bit_length() of modulus idx (for O(1) per-pair thresholds).
  std::size_t bits(std::size_t idx) const noexcept {
    assert(idx < m_);
    return bits_[idx];
  }
  std::span<const std::size_t> bit_lengths() const noexcept { return bits_; }

  std::size_t bytes() const noexcept {
    return data_.size() * sizeof(Limb) +
           sizes_.size() * sizeof(std::size_t) +
           bits_.size() * sizeof(std::size_t);
  }

 private:
  CorpusPanels(std::size_t corpus_size, std::size_t group_size,
               std::size_t padded_limbs)
      : m_(corpus_size),
        r_(std::max<std::size_t>(1, group_size)),
        pad_(padded_limbs),
        groups_((m_ + r_ - 1) / r_),
        data_(groups_ * r_ * pad_, Limb{0}),
        sizes_(groups_ * r_, 0),
        bits_(m_, 0),
        rows_(groups_, 1) {}

  void stage(std::size_t idx, std::span<const Limb> limbs, std::size_t bits) {
    if (limbs.size() + kBatchPadLimbs > pad_) {
      throw std::length_error("CorpusPanels: modulus exceeds panel capacity");
    }
    const std::size_t g = idx / r_;
    const std::size_t lane = idx % r_;
    Limb* panel_base = data_.data() + g * r_ * pad_;
    for (std::size_t i = 0; i < limbs.size(); ++i) {
      panel_base[i * r_ + lane] = limbs[i];
    }
    sizes_[g * r_ + lane] = limbs.size();
    bits_[idx] = bits;
    // One row above the longest member so the β > 0 write row is refreshed
    // along with the values.
    rows_[g] = std::max(rows_[g], limbs.size() + 1);
  }

  std::size_t m_, r_, pad_, groups_;
  std::vector<Limb> data_;
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> bits_;
  std::vector<std::size_t> rows_;
};

}  // namespace bulkgcd::bulk
