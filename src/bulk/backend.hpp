// Bulk execution backend selection (the CPU analogue of a CUDA launch
// configuration). BulkBackend picks the engine shape the all-pairs sweep
// runs its SIMT blocks with; VecIsa picks the instruction set the vector
// backend executes with. Both enums deliberately live outside the engine
// headers: AllPairsConfig carries them, and the checkpoint journal identity
// deliberately EXCLUDES them — every backend produces bit-identical hits and
// statistics (asserted by the differential tests), so a checkpoint written
// under one backend resumes under any other, exactly like the `staged` flag.
#pragma once

#include <cstdint>

namespace bulkgcd::bulk {

enum class BulkBackend : std::uint8_t {
  kAuto,      ///< resolve at runtime: vector when the CPU has it, else staged
  kLockstep,  ///< per-lane loads + warp-lockstep rounds (reference path)
  kStaged,    ///< corpus panels + lane-serial scalar execution (PR 2 shape)
  kVector,    ///< corpus panels + W-lane SIMD warp engine (bulk/vec/)
};

enum class VecIsa : std::uint8_t {
  kAuto,      ///< cpuid-probe the best compiled-in ISA
  kPortable,  ///< the same W-wide kernels compiled with baseline flags
  kAvx2,      ///< the -mavx2 translation unit (x86-64 with AVX2 only)
};

constexpr const char* to_string(BulkBackend b) noexcept {
  switch (b) {
    case BulkBackend::kAuto: return "auto";
    case BulkBackend::kLockstep: return "lockstep";
    case BulkBackend::kStaged: return "staged";
    case BulkBackend::kVector: return "vector";
    default: return "?";
  }
}

constexpr const char* to_string(VecIsa isa) noexcept {
  switch (isa) {
    case VecIsa::kAuto: return "auto";
    case VecIsa::kPortable: return "portable";
    case VecIsa::kAvx2: return "avx2";
    default: return "?";
  }
}

}  // namespace bulkgcd::bulk
