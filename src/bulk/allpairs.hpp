// All-pairs GCD over a corpus of RSA moduli — the paper's CUDA grid
// decomposition (Section VI) on top of the SIMT batch engine (or the scalar
// engine as the CPU baseline of Table V).
//
// m moduli are split into ⌈m/r⌉ groups of r. Block (i, j) with i < j covers
// the r×r cross pairs: in round u, lane k computes gcd(n_{i,k}, n_{j,u}).
// Block (i, i) covers the intra-group pairs (lane k active in round u only
// when k < u). Blocks with i > j exit immediately — exactly the paper's
// kernel. Blocks are distributed over the thread pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bulk/backend.hpp"
#include "bulk/simt.hpp"
#include "bulk/staged_corpus.hpp"
#include "gcd/algorithms.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace bulkgcd::bulk {

enum class EngineKind {
  kScalar,  ///< one GcdEngine per worker, pair by pair (the CPU column)
  kSimt,    ///< warp-lockstep batches, column-wise layout (the GPU analogue)
};

struct AllPairsConfig {
  gcd::Variant variant = gcd::Variant::kApproximate;
  EngineKind engine = EngineKind::kSimt;
  bool early_terminate = true;  ///< Section V termination for RSA moduli
  std::size_t group_size = 64;  ///< r: moduli per group == lanes per block
  std::size_t warp_width = 32;
  /// Worker count for the sharded tile sweep: 0 = one worker per global-pool
  /// thread, 1 = inline on the caller (no pool hop — the latency-sensitive
  /// probe path), N = a private pool of N workers.
  std::size_t pool_threads = 0;
  /// Blocks per work-stealing scheduler tile (bulk/tile_scheduler.hpp).
  /// 0 = auto (~4 tiles per worker). Purely a scheduling knob: results are
  /// bit-identical across tile shapes and worker counts, so neither is part
  /// of the checkpoint identity.
  std::size_t tile_blocks = 0;
  /// Stage the corpus once into column-major CorpusPanels and refresh each
  /// SIMT batch by bulk panel copy + lane-serial execution (the CUDA kernel
  /// shape) instead of r per-lane loads + lockstep rounds. Bit-identical
  /// hits, GCDs, and statistics — asserted by the staging differential
  /// tests; the unstaged path stays available as the reference. Ignored by
  /// the scalar engine.
  bool staged = true;
  /// Execution backend for the SIMT engine's blocks (bulk/backend.hpp).
  /// kAuto resolves at runtime: the vector backend when the CPU supports a
  /// compiled-in SIMD leg (and staging is on), else the staged scalar path.
  /// Overridable without recompiling via BULKGCD_FORCE_BACKEND =
  /// auto | lockstep | staged | vector | vector-portable. Bit-identical
  /// results across backends, so NOT part of the checkpoint identity.
  BulkBackend backend = BulkBackend::kAuto;
  /// Vector ISA when backend resolves to kVector; kAuto = cpuid probe.
  VecIsa vec_isa = VecIsa::kAuto;
  /// Telemetry sink (src/obs/). Null — the "null registry" path — keeps the
  /// sweep free of instrumentation work beyond a handful of branches; when
  /// set, the sweep feeds the sweep_*/simt_*/gcd_* metrics documented in
  /// docs/OBSERVABILITY.md. Not part of the scan identity (a checkpoint
  /// written with metrics off resumes with them on, and vice versa).
  obs::MetricsRegistry* metrics = nullptr;
  /// Timeline sink (obs/trace.hpp). Null — the null-recorder path — keeps
  /// every trace site a single never-taken branch. When set, the sweep
  /// records per-worker tile spans, steal instants, and panel-load /
  /// lane-exec phase spans on each worker's track. Purely observational:
  /// results, stats, and counters are bit-identical with tracing on or off
  /// (tests/trace_test.cpp), and like `metrics` it is NOT part of the
  /// checkpoint identity.
  obs::TraceRecorder* trace = nullptr;
};

/// A factored pair: moduli[i] and moduli[j] share `factor`.
struct FactorHit {
  std::size_t i = 0;
  std::size_t j = 0;
  mp::BigInt factor;
  /// factor equals moduli[i] or moduli[j] — a duplicate modulus (or a pair
  /// sharing both primes). The affected key cannot be split this way:
  /// n / factor == 1 on that side, so key recovery must skip it.
  bool full_modulus = false;
};

struct AllPairsResult {
  std::vector<FactorHit> hits;     ///< sorted by (i, j)
  std::uint64_t pairs_tested = 0;
  std::uint64_t blocks_run = 0;
  std::uint64_t input_bytes = 0;   ///< host→device traffic a GPU would pay
  double seconds = 0.0;            ///< wall-clock for the whole sweep
  SimtStats simt;                  ///< filled for EngineKind::kSimt
  gcd::GcdStats scalar;            ///< filled for EngineKind::kScalar
  double micros_per_gcd() const noexcept {
    return pairs_tested == 0 ? 0.0 : seconds * 1e6 / double(pairs_tested);
  }
};

/// Resolve config.backend / config.vec_isa in place: applies the
/// BULKGCD_FORCE_BACKEND environment override (throws std::invalid_argument
/// on an unknown value), then collapses kAuto to a concrete backend for this
/// process (vector iff a SIMD leg is compiled in AND the CPU supports it and
/// the config is staged-SIMT; staged or lockstep otherwise). all_pairs_gcd,
/// probe_incremental, and the scan driver call this once per run; it is
/// exposed so benches and tests can pin or inspect the resolution.
void resolve_backend(AllPairsConfig& config);

/// Probe all m(m−1)/2 pairs of `moduli` for shared prime factors.
AllPairsResult all_pairs_gcd(std::span<const mp::BigInt> moduli,
                             const AllPairsConfig& config = {});

/// Incremental scan: probe ONE newly harvested modulus against an existing
/// corpus (m cheap GCDs instead of re-running the full m(m−1)/2 sweep —
/// the daily-update mode of a web-scale scanner). Hits carry the corpus
/// index sharing a factor with `candidate`.
struct IncrementalHit {
  std::size_t corpus_index = 0;
  mp::BigInt factor;
  /// factor equals the candidate or the corpus member (duplicate modulus);
  /// see FactorHit::full_modulus.
  bool full_modulus = false;
};

/// Work accounting for one probe_incremental call, mirroring the
/// AllPairsResult stats block. When config.metrics is set, the same values
/// are folded into the scan_*/simt_*/gcd_* counters at the worker merge
/// points (fold_engine_stats), so counter totals exactly equal the returned
/// stats — the probe path feeds telemetry like the full sweep does.
struct ProbeStats {
  std::uint64_t pairs_tested = 0;  ///< candidate × corpus pairs executed
  SimtStats simt;                  ///< filled for EngineKind::kSimt
  gcd::GcdStats scalar;            ///< filled for EngineKind::kScalar
};

std::vector<IncrementalHit> probe_incremental(
    const mp::BigInt& candidate, std::span<const mp::BigInt> corpus,
    const AllPairsConfig& config = {}, ProbeStats* stats = nullptr);

/// Amortized-staging variant for streaming callers: the corpus is already
/// repacked and panel-staged (bulk/staged_corpus.hpp, grown append-by-append
/// as keys fold in), so the probe skips the per-call ScanCorpus repack and
/// CorpusPanels rebuild entirely and rides the live panels' contiguous
/// loads. Hits and pair counts are bit-identical to the span overload over
/// the same moduli (asserted in tests/allpairs_test.cpp) — the two differ
/// only in who pays the staging cost and when.
std::vector<IncrementalHit> probe_incremental(
    const mp::BigInt& candidate, const StagedCorpus& corpus,
    const AllPairsConfig& config = {}, ProbeStats* stats = nullptr);

}  // namespace bulkgcd::bulk
