#include "bulk/allpairs.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>

#include "bulk/block_grid.hpp"
#include "bulk/tile_scheduler.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace bulkgcd::bulk {

namespace {

/// Shared thread-placement contract of the sharded sweeps: pool_threads 1 =
/// inline on the caller (pool stays null, the scheduler runs serial), 0 =
/// one worker per global-pool thread, N = a private pool of N workers.
struct SweepExecutor {
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;
  std::size_t workers = 1;

  explicit SweepExecutor(std::size_t pool_threads) {
    if (pool_threads == 1) return;
    if (pool_threads == 0) {
      pool = &global_pool();
      workers = pool->size();
    } else {
      local_pool.emplace(pool_threads);
      pool = &*local_pool;
      workers = pool_threads;
    }
  }
};

}  // namespace

AllPairsResult all_pairs_gcd(std::span<const mp::BigInt> moduli,
                             const AllPairsConfig& config) {
  AllPairsResult result;
  const std::size_t m = moduli.size();
  if (m < 2) return result;

  AllPairsConfig cfg = config;
  resolve_backend(cfg);

  // Repack the BigInt corpus into scan limbs once (bulk/scan_corpus.hpp);
  // every hot-path access below — staging, loads, the full-modulus check —
  // reads these flat spans.
  const ScanCorpus scan(moduli);
  const std::size_t cap = scan.max_limbs();
  const BlockGrid grid(m, cfg.group_size);

  result.blocks_run = grid.block_count();
  result.input_bytes = m * cap * sizeof(ScanLimb);

  // Stage the corpus once (the paper's single host→device copy); every
  // worker's sweeper then refreshes its batch from the shared read-only
  // panels.
  std::optional<CorpusPanels<ScanLimb>> panels;
  if (cfg.engine == EngineKind::kSimt && cfg.staged) {
    panels.emplace(scan, grid.r, cap + kBatchPadLimbs);
  }

  Timer timer;

  // Sharded sweep: every worker owns a long-lived BlockSweeper (engines,
  // batch buffers, LocalHistograms) reused across all the tiles it runs —
  // its own contiguous home run plus whatever it steals. A worker slot is
  // only ever touched by its worker, so no lock guards the sweepers; the
  // scheduler joining all workers sequences the merge below after the last
  // body call.
  SweepExecutor exec(cfg.pool_threads);
  const TileScheduler sched(grid.block_count(), cfg.tile_blocks, exec.workers);
  std::vector<std::unique_ptr<BlockSweeper>> sweepers(sched.worker_count());
  sched.run(
      exec.pool,
      [&](std::size_t w, const TileRange& t) {
        auto& sweeper = sweepers[w];
        if (!sweeper) {
          sweeper = std::make_unique<BlockSweeper>(
              scan, grid, cfg, cap, panels ? &*panels : nullptr);
        }
        sweeper->run_blocks(t.lo, t.hi);
      },
      cfg.trace);
  for (auto& sweeper : sweepers) {
    if (!sweeper) continue;
    auto local = sweeper->take();
    // Engine-statistics counters are fed once per worker merge, so their
    // totals exactly equal the final AllPairsResult stats.
    fold_engine_stats(cfg.metrics, local.simt, local.scalar);
    result.pairs_tested += local.pairs;
    result.simt += local.simt;
    result.scalar += local.scalar;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(local.hits.begin()),
                       std::make_move_iterator(local.hits.end()));
  }

  result.seconds = timer.seconds();
  std::sort(result.hits.begin(), result.hits.end(),
            [](const FactorHit& a, const FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return result;
}

namespace {

/// Shared probe core: candidate × every corpus member, sharded over the tile
/// scheduler. Generic over the corpus view — ScanCorpus (repacked per call by
/// the span overload) or StagedCorpusT (kept live across arrivals by the
/// streaming fold) — both exposing size()/limbs(i)/bits(i)/max_limbs().
/// `panels` (optional) must stage exactly the view's moduli with lane count
/// `r`. cfg must already be backend-resolved.
template <class CorpusView>
std::vector<IncrementalHit> probe_corpus(const mp::BigInt& candidate,
                                         const CorpusView& scan, std::size_t r,
                                         const CorpusPanels<ScanLimb>* panels,
                                         const AllPairsConfig& cfg,
                                         ProbeStats* stats) {
  std::vector<IncrementalHit> hits;
  const std::size_t m = scan.size();
  const ScanCorpus cand_scan(std::span(&candidate, 1));
  const auto cand = cand_scan.limbs(0);
  const std::size_t cand_bits = candidate.bit_length();
  const std::size_t cap = std::max(scan.max_limbs(), cand_scan.max_limbs());
  // Section V: the early-terminate threshold is a property of each PAIR, so
  // each corpus member gets min(bits(candidate), bits(member))/2 rather than
  // a corpus-wide bound that misses hits among the smaller keys.
  auto early = [&](std::size_t i) {
    return cfg.early_terminate ? std::min(cand_bits, scan.bits(i)) / 2 : 0;
  };

  auto push_hit = [&](std::vector<IncrementalHit>& local, std::size_t i,
                      mp::BigIntT<ScanLimb> g) {
    if (g.bit_length() < 2) return;  // g > 1 ⟺ at least two bits
    const auto gl = g.limbs();
    const bool full =
        std::equal(gl.begin(), gl.end(), scan.limbs(i).begin(),
                   scan.limbs(i).end()) ||
        std::equal(gl.begin(), gl.end(), cand.begin(), cand.end());
    local.push_back({i, to_default_bigint<ScanLimb>(gl), full});
  };

  // Generic over the executing batch (SimtBatch or the vector engine) —
  // identical verbs, modulo the staged/lockstep entry-point split.
  auto probe_blocks = [&](auto& batch, std::size_t lo, std::size_t hi,
                          std::vector<IncrementalHit>& local,
                          std::uint64_t& pairs) {
    using Batch = std::decay_t<decltype(batch)>;
    for (std::size_t block = lo; block < hi; ++block) {
      const std::size_t begin = block * r;
      const std::size_t end = std::min(begin + r, m);
      if (panels) {
        batch.load_panel(panels->panel(block), panels->sizes(block),
                         panels->rows(block));
        batch.broadcast_y(cand);
        for (std::size_t k = 0; begin + k < end; ++k) {
          batch.reset_lane_state(k, early(begin + k));
        }
        for (std::size_t k = end - begin; k < r; ++k) batch.disable(k);
        if constexpr (std::is_same_v<Batch,
                                     SimtBatch<ScanLimb, ColumnMatrix>>) {
          batch.run_staged(cfg.variant);
        } else {
          batch.run(cfg.variant);
        }
      } else {
        for (std::size_t k = 0; k < r; ++k) {
          if (begin + k < end) {
            batch.load(k, scan.limbs(begin + k), cand, early(begin + k));
          } else {
            batch.disable(k);
          }
        }
        batch.run(cfg.variant);
      }
      pairs += end - begin;
      for (std::size_t k = 0; begin + k < end; ++k) {
        if (batch.early_coprime(k)) continue;
        push_hit(local, begin + k, batch.gcd_of(k));
      }
    }
  };

  // Per-worker probe state: one engine of the configured kind plus local
  // hit/pair accumulators, created lazily on the worker's first tile and
  // reused across every tile it runs (home run + steals). Worker batches
  // start with zeroed statistics; after the schedule their accumulated
  // SimtStats are the worker's exact share of the probe.
  struct ProbeWorker {
    std::vector<IncrementalHit> hits;
    ProbeStats work;
    std::unique_ptr<VecBatchBase<ScanLimb>> vec;
    std::unique_ptr<SimtBatch<ScanLimb, ColumnMatrix>> simt;
    std::unique_ptr<gcd::GcdEngine<ScanLimb>> scalar_engine;
  };

  // Same thread-placement contract as all_pairs_gcd: 1 = inline on the
  // caller (no pool hop — the latency-sensitive intake path), 0 = global
  // pool, N = a private pool of N workers. Probe blocks are sharded over
  // the workers through the same work-stealing tile scheduler as the full
  // sweep (tile_blocks probe blocks per tile).
  const std::size_t blocks = (m + r - 1) / r;
  SweepExecutor exec(cfg.pool_threads);
  const TileScheduler sched(blocks, cfg.tile_blocks, exec.workers);
  std::vector<std::unique_ptr<ProbeWorker>> workers(sched.worker_count());
  sched.run(exec.pool, [&](std::size_t w, const TileRange& t) {
    auto& worker = workers[w];
    if (!worker) worker = std::make_unique<ProbeWorker>();
    if (cfg.engine == EngineKind::kSimt) {
      if (cfg.backend == BulkBackend::kVector) {
        if (!worker->vec) {
          worker->vec =
              make_vec_batch<ScanLimb>(r, cap, cfg.warp_width, cfg.vec_isa);
        }
        probe_blocks(*worker->vec, t.lo, t.hi, worker->hits,
                     worker->work.pairs_tested);
      } else {
        if (!worker->simt) {
          worker->simt = std::make_unique<SimtBatch<ScanLimb, ColumnMatrix>>(
              r, cap, cfg.warp_width);
        }
        probe_blocks(*worker->simt, t.lo, t.hi, worker->hits,
                     worker->work.pairs_tested);
      }
    } else {
      if (!worker->scalar_engine) {
        worker->scalar_engine = std::make_unique<gcd::GcdEngine<ScanLimb>>(cap);
      }
      for (std::size_t block = t.lo; block < t.hi; ++block) {
        const std::size_t begin = block * r;
        const std::size_t end = std::min(begin + r, m);
        for (std::size_t i = begin; i < end; ++i) {
          const auto run =
              worker->scalar_engine->run(cfg.variant, scan.limbs(i), cand,
                                         early(i), &worker->work.scalar);
          ++worker->work.pairs_tested;
          if (run.early_coprime) continue;
          push_hit(worker->hits, i,
                   mp::BigIntT<ScanLimb>::from_limbs(run.gcd));
        }
      }
    }
  }, cfg.trace);

  ProbeStats total;
  for (auto& worker : workers) {
    if (!worker) continue;
    if (worker->vec) worker->work.simt = worker->vec->stats();
    if (worker->simt) worker->work.simt = worker->simt->stats();
    // Same contract as all_pairs_gcd: engine counters are fed once per
    // worker merge, so their totals equal the returned ProbeStats.
    fold_engine_stats(cfg.metrics, worker->work.simt, worker->work.scalar);
    total.pairs_tested += worker->work.pairs_tested;
    total.simt += worker->work.simt;
    total.scalar += worker->work.scalar;
    hits.insert(hits.end(), std::make_move_iterator(worker->hits.begin()),
                std::make_move_iterator(worker->hits.end()));
  }
  if (stats) *stats = std::move(total);

  std::sort(hits.begin(), hits.end(),
            [](const IncrementalHit& a, const IncrementalHit& b) {
              return a.corpus_index < b.corpus_index;
            });
  return hits;
}

}  // namespace

std::vector<IncrementalHit> probe_incremental(const mp::BigInt& candidate,
                                              std::span<const mp::BigInt> corpus,
                                              const AllPairsConfig& config,
                                              ProbeStats* stats) {
  if (stats) *stats = ProbeStats{};
  if (corpus.empty() || candidate.is_zero()) return {};

  AllPairsConfig cfg = config;
  resolve_backend(cfg);

  const ScanCorpus scan(corpus);
  const std::size_t r = std::max<std::size_t>(1, std::min(cfg.group_size,
                                                          corpus.size()));
  // Stage the corpus once; each probe block then refreshes its batch with a
  // bulk panel copy + candidate broadcast (group g == probe block g).
  std::optional<CorpusPanels<ScanLimb>> panels;
  if (cfg.engine == EngineKind::kSimt && cfg.staged) {
    panels.emplace(scan, r, scan.max_limbs() + kBatchPadLimbs);
  }
  return probe_corpus(candidate, scan, r, panels ? &*panels : nullptr, cfg,
                      stats);
}

std::vector<IncrementalHit> probe_incremental(const mp::BigInt& candidate,
                                              const StagedCorpus& corpus,
                                              const AllPairsConfig& config,
                                              ProbeStats* stats) {
  if (stats) *stats = ProbeStats{};
  if (corpus.size() == 0 || candidate.is_zero()) return {};

  AllPairsConfig cfg = config;
  resolve_backend(cfg);

  // The staged corpus already carries live panels with its own lane count;
  // the probe rides them directly — no repack, no panel rebuild. Lane count
  // is NOT clamped to the corpus size (tail lanes run disabled), which is
  // value-identical: r only shapes batching, never which pairs run.
  const CorpusPanels<ScanLimb>* panels =
      (cfg.engine == EngineKind::kSimt && cfg.staged) ? &corpus.panels()
                                                      : nullptr;
  return probe_corpus(candidate, corpus, corpus.group_size(), panels, cfg,
                      stats);
}

}  // namespace bulkgcd::bulk
