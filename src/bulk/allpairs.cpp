#include "bulk/allpairs.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "bulk/block_grid.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace bulkgcd::bulk {

AllPairsResult all_pairs_gcd(std::span<const mp::BigInt> moduli,
                             const AllPairsConfig& config) {
  AllPairsResult result;
  const std::size_t m = moduli.size();
  if (m < 2) return result;

  std::size_t cap = 0;
  std::vector<std::size_t> bits(m);
  for (std::size_t i = 0; i < m; ++i) {
    cap = std::max(cap, moduli[i].size());
    bits[i] = moduli[i].bit_length();
  }
  const BlockGrid grid(m, config.group_size);

  result.blocks_run = grid.block_count();
  result.input_bytes = m * cap * sizeof(ScanLimb);

  // Stage the corpus once (the paper's single host→device copy); every
  // worker's sweeper then refreshes its batch from the shared read-only
  // panels.
  std::optional<CorpusPanels<ScanLimb>> panels;
  if (config.engine == EngineKind::kSimt && config.staged) {
    panels.emplace(moduli, grid.r, cap + kBatchPadLimbs);
  }

  std::mutex merge_mutex;
  Timer timer;

  auto process_chunk = [&](std::size_t lo, std::size_t hi) {
    BlockSweeper sweeper(moduli, bits, grid, config, cap,
                         panels ? &*panels : nullptr);
    sweeper.run_blocks(lo, hi);
    auto local = sweeper.take();
    // Engine-statistics counters are fed at the merge points, so their
    // totals exactly equal the final AllPairsResult stats.
    fold_engine_stats(config.metrics, local.simt, local.scalar);

    std::lock_guard lock(merge_mutex);
    result.pairs_tested += local.pairs;
    result.simt += local.simt;
    result.scalar += local.scalar;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(local.hits.begin()),
                       std::make_move_iterator(local.hits.end()));
  };

  if (config.pool_threads == 1) {
    process_chunk(0, grid.block_count());
  } else if (config.pool_threads == 0) {
    global_pool().parallel_for(0, grid.block_count(), process_chunk);
  } else {
    ThreadPool pool(config.pool_threads);
    pool.parallel_for(0, grid.block_count(), process_chunk);
  }

  result.seconds = timer.seconds();
  std::sort(result.hits.begin(), result.hits.end(),
            [](const FactorHit& a, const FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return result;
}

std::vector<IncrementalHit> probe_incremental(const mp::BigInt& candidate,
                                              std::span<const mp::BigInt> corpus,
                                              const AllPairsConfig& config) {
  std::vector<IncrementalHit> hits;
  if (corpus.empty() || candidate.is_zero()) return hits;

  std::size_t cap = candidate.size();
  const std::size_t cand_bits = candidate.bit_length();
  std::vector<std::size_t> bits(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    cap = std::max(cap, corpus[i].size());
    bits[i] = corpus[i].bit_length();
  }
  // Section V: the early-terminate threshold is a property of each PAIR, so
  // each corpus member gets min(bits(candidate), bits(member))/2 rather than
  // a corpus-wide bound that misses hits among the smaller keys.
  auto early = [&](std::size_t i) {
    return config.early_terminate ? std::min(cand_bits, bits[i]) / 2 : 0;
  };
  const std::size_t r = std::max<std::size_t>(1, std::min(config.group_size,
                                                          corpus.size()));
  // Stage the corpus once; each probe block then refreshes its batch with a
  // bulk panel copy + candidate broadcast (group g == probe block g).
  std::optional<CorpusPanels<ScanLimb>> panels;
  if (config.engine == EngineKind::kSimt && config.staged) {
    panels.emplace(corpus, r, cap + kBatchPadLimbs);
  }
  std::mutex merge_mutex;

  auto push_hit = [&](std::vector<IncrementalHit>& local, std::size_t i,
                      mp::BigInt g) {
    if (g > mp::BigInt(1)) {
      const bool full = g == corpus[i] || g == candidate;
      local.push_back({i, std::move(g), full});
    }
  };

  global_pool().parallel_for(0, (corpus.size() + r - 1) / r, [&](std::size_t lo,
                                                                 std::size_t hi) {
    std::vector<IncrementalHit> local;
    if (config.engine == EngineKind::kSimt) {
      SimtBatch<ScanLimb, ColumnMatrix> batch(r, cap, config.warp_width);
      for (std::size_t block = lo; block < hi; ++block) {
        const std::size_t begin = block * r;
        const std::size_t end = std::min(begin + r, corpus.size());
        if (panels) {
          batch.load_panel(panels->panel(block), panels->sizes(block),
                           panels->rows(block));
          batch.broadcast_y(candidate.limbs());
          for (std::size_t k = 0; begin + k < end; ++k) {
            batch.reset_lane_state(k, early(begin + k));
          }
          for (std::size_t k = end - begin; k < r; ++k) batch.disable(k);
          batch.run_staged(config.variant);
        } else {
          for (std::size_t k = 0; k < r; ++k) {
            if (begin + k < end) {
              batch.load(k, corpus[begin + k].limbs(), candidate.limbs(),
                         early(begin + k));
            } else {
              batch.disable(k);
            }
          }
          batch.run(config.variant);
        }
        for (std::size_t k = 0; begin + k < end; ++k) {
          if (batch.early_coprime(k)) continue;
          push_hit(local, begin + k, batch.gcd_of(k));
        }
      }
    } else {
      gcd::GcdEngine<ScanLimb> engine(cap);
      for (std::size_t block = lo; block < hi; ++block) {
        const std::size_t begin = block * r;
        const std::size_t end = std::min(begin + r, corpus.size());
        for (std::size_t i = begin; i < end; ++i) {
          const auto run = engine.run(config.variant, corpus[i].limbs(),
                                      candidate.limbs(), early(i));
          if (run.early_coprime) continue;
          push_hit(local, i, mp::BigInt::from_limbs(run.gcd));
        }
      }
    }
    std::lock_guard lock(merge_mutex);
    hits.insert(hits.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  });

  std::sort(hits.begin(), hits.end(),
            [](const IncrementalHit& a, const IncrementalHit& b) {
              return a.corpus_index < b.corpus_index;
            });
  return hits;
}

}  // namespace bulkgcd::bulk
