#include "bulk/allpairs.hpp"

#include <algorithm>
#include <mutex>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace bulkgcd::bulk {

namespace {

struct Block {
  std::size_t i, j;
};

struct LocalState {
  std::vector<FactorHit> hits;
  std::uint64_t pairs = 0;
  SimtStats simt;
  gcd::GcdStats scalar;
};

}  // namespace

AllPairsResult all_pairs_gcd(std::span<const mp::BigInt> moduli,
                             const AllPairsConfig& config) {
  AllPairsResult result;
  const std::size_t m = moduli.size();
  if (m < 2) return result;

  std::size_t cap = 0;
  std::size_t bits = 0;
  for (const auto& n : moduli) {
    cap = std::max(cap, n.size());
    bits = std::max(bits, n.bit_length());
  }
  const std::size_t early_bits = config.early_terminate ? bits / 2 : 0;
  const std::size_t r = std::max<std::size_t>(1, std::min(config.group_size, m));
  const std::size_t groups = (m + r - 1) / r;

  std::vector<Block> blocks;
  blocks.reserve(groups * (groups + 1) / 2);
  for (std::size_t i = 0; i < groups; ++i) {
    for (std::size_t j = i; j < groups; ++j) blocks.push_back({i, j});
  }
  result.blocks_run = blocks.size();
  result.input_bytes = m * cap * sizeof(std::uint32_t);

  std::mutex merge_mutex;
  Timer timer;

  auto process_chunk = [&](std::size_t lo, std::size_t hi) {
    LocalState local;
    gcd::GcdEngine<std::uint32_t> scalar_engine(cap);
    SimtBatch<std::uint32_t, ColumnMatrix> batch(r, cap, config.warp_width);

    auto record = [&](std::size_t a, std::size_t b, const mp::BigInt& g) {
      if (g > mp::BigInt(1)) local.hits.push_back({a, b, g});
    };

    for (std::size_t bi = lo; bi < hi; ++bi) {
      const auto [i, j] = blocks[bi];
      const std::size_t i_begin = i * r, i_end = std::min(i_begin + r, m);
      const std::size_t j_begin = j * r, j_end = std::min(j_begin + r, m);

      for (std::size_t jj = j_begin; jj < j_end; ++jj) {
        const std::size_t u = jj - j_begin;
        // Lanes: group-i members paired against n_jj this round. For the
        // diagonal block only k < u is live (each unordered pair once).
        const std::size_t k_end = (i == j) ? std::min(u, i_end - i_begin)
                                           : i_end - i_begin;
        if (k_end == 0) continue;

        if (config.engine == EngineKind::kSimt) {
          for (std::size_t k = 0; k < r; ++k) {
            if (k < k_end) {
              batch.load(k, moduli[i_begin + k].limbs(), moduli[jj].limbs());
            } else {
              batch.disable(k);
            }
          }
          batch.run(config.variant, early_bits);
          for (std::size_t k = 0; k < k_end; ++k) {
            ++local.pairs;
            if (!batch.early_coprime(k)) {
              record(i_begin + k, jj, batch.gcd_of(k));
            }
          }
        } else {
          for (std::size_t k = 0; k < k_end; ++k) {
            ++local.pairs;
            const auto run = scalar_engine.run(
                config.variant, moduli[i_begin + k].limbs(),
                moduli[jj].limbs(), early_bits, &local.scalar);
            if (!run.early_coprime) {
              record(i_begin + k, jj,
                     mp::BigInt::from_limbs(run.gcd));
            }
          }
        }
      }
    }
    if (config.engine == EngineKind::kSimt) local.simt = batch.stats();

    std::lock_guard lock(merge_mutex);
    result.pairs_tested += local.pairs;
    result.simt += local.simt;
    result.scalar += local.scalar;
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(local.hits.begin()),
                       std::make_move_iterator(local.hits.end()));
  };

  if (config.pool_threads == 1) {
    process_chunk(0, blocks.size());
  } else if (config.pool_threads == 0) {
    global_pool().parallel_for(0, blocks.size(), process_chunk);
  } else {
    ThreadPool pool(config.pool_threads);
    pool.parallel_for(0, blocks.size(), process_chunk);
  }

  result.seconds = timer.seconds();
  std::sort(result.hits.begin(), result.hits.end(),
            [](const FactorHit& a, const FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return result;
}

std::vector<IncrementalHit> probe_incremental(const mp::BigInt& candidate,
                                              std::span<const mp::BigInt> corpus,
                                              const AllPairsConfig& config) {
  std::vector<IncrementalHit> hits;
  if (corpus.empty() || candidate.is_zero()) return hits;

  std::size_t cap = candidate.size();
  std::size_t bits = candidate.bit_length();
  for (const auto& n : corpus) {
    cap = std::max(cap, n.size());
    bits = std::max(bits, n.bit_length());
  }
  const std::size_t early_bits = config.early_terminate ? bits / 2 : 0;
  const std::size_t r = std::max<std::size_t>(1, std::min(config.group_size,
                                                          corpus.size()));
  std::mutex merge_mutex;

  global_pool().parallel_for(0, (corpus.size() + r - 1) / r, [&](std::size_t lo,
                                                                 std::size_t hi) {
    std::vector<IncrementalHit> local;
    if (config.engine == EngineKind::kSimt) {
      SimtBatch<std::uint32_t, ColumnMatrix> batch(r, cap, config.warp_width);
      for (std::size_t block = lo; block < hi; ++block) {
        const std::size_t begin = block * r;
        const std::size_t end = std::min(begin + r, corpus.size());
        for (std::size_t k = 0; k < r; ++k) {
          if (begin + k < end) {
            batch.load(k, corpus[begin + k].limbs(), candidate.limbs());
          } else {
            batch.disable(k);
          }
        }
        batch.run(config.variant, early_bits);
        for (std::size_t k = 0; begin + k < end; ++k) {
          if (batch.early_coprime(k)) continue;
          auto g = batch.gcd_of(k);
          if (g > mp::BigInt(1)) local.push_back({begin + k, std::move(g)});
        }
      }
    } else {
      gcd::GcdEngine<std::uint32_t> engine(cap);
      for (std::size_t block = lo; block < hi; ++block) {
        const std::size_t begin = block * r;
        const std::size_t end = std::min(begin + r, corpus.size());
        for (std::size_t i = begin; i < end; ++i) {
          const auto run = engine.run(config.variant, corpus[i].limbs(),
                                      candidate.limbs(), early_bits);
          if (run.early_coprime) continue;
          auto g = mp::BigInt::from_limbs(run.gcd);
          if (g > mp::BigInt(1)) local.push_back({i, std::move(g)});
        }
      }
    }
    std::lock_guard lock(merge_mutex);
    hits.insert(hits.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  });

  std::sort(hits.begin(), hits.end(),
            [](const IncrementalHit& a, const IncrementalHit& b) {
              return a.corpus_index < b.corpus_index;
            });
  return hits;
}

}  // namespace bulkgcd::bulk
