#include "bulk/scan_driver.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include <unistd.h>  // fsync

#include "bulk/block_grid.hpp"
#include "bulk/tile_scheduler.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rsa/keystore.hpp"

namespace bulkgcd::bulk {

namespace {

/// Driver-level metric handles (docs/OBSERVABILITY.md). All null when the
/// scan runs without a registry; every use is guarded by a single branch.
/// scan_pairs_total / scan_hits_total count *committed* work including
/// checkpoint-restored chunks, so at the end of a run they exactly equal
/// the final ScanReport's pairs_tested and hit count.
struct DriverTelemetry {
  obs::Counter* chunks_committed = nullptr;
  obs::Counter* chunks_restored = nullptr;
  obs::Counter* chunks_retried = nullptr;
  obs::Counter* chunks_quarantined = nullptr;
  obs::Counter* pairs = nullptr;
  obs::Counter* pairs_restored = nullptr;
  obs::Counter* hits = nullptr;
  obs::HistogramMetric* chunk_seconds = nullptr;
  obs::HistogramMetric* fsync_seconds = nullptr;
  obs::Gauge* pairs_per_second = nullptr;
  obs::Gauge* blocks_per_second = nullptr;
  obs::Gauge* progress_ratio = nullptr;
  obs::Gauge* eta_seconds = nullptr;

  static DriverTelemetry resolve(obs::MetricsRegistry* m) {
    DriverTelemetry t;
    if (!m) return t;
    t.chunks_committed = m->counter("scan_chunks_committed_total");
    t.chunks_restored = m->counter("scan_chunks_restored_total");
    t.chunks_retried = m->counter("scan_chunks_retried_total");
    t.chunks_quarantined = m->counter("scan_chunks_quarantined_total");
    t.pairs = m->counter("scan_pairs_total");
    t.pairs_restored = m->counter("scan_pairs_restored_total");
    t.hits = m->counter("scan_hits_total");
    t.chunk_seconds = m->histogram("scan_chunk_seconds", 0.0, 30.0, 120);
    t.fsync_seconds =
        m->histogram("scan_checkpoint_fsync_seconds", 0.0, 0.1, 100);
    t.pairs_per_second = m->gauge("scan_pairs_per_second");
    t.blocks_per_second = m->gauge("scan_blocks_per_second");
    t.progress_ratio = m->gauge("scan_progress_ratio");
    t.eta_seconds = m->gauge("scan_eta_seconds");
    return t;
  }
};

/// Driver-level trace handles (obs/trace.hpp), resolved once per scan like
/// DriverTelemetry. Null recorder ⇒ every site is one never-taken branch.
struct DriverTrace {
  obs::TraceRecorder* rec = nullptr;
  std::uint32_t chunk_id = 0;
  std::uint32_t commit_id = 0;
  std::uint32_t fsync_id = 0;

  static DriverTrace resolve(obs::TraceRecorder* rec) {
    DriverTrace t;
    t.rec = rec;
    if (rec == nullptr) return t;
    t.chunk_id = rec->intern("chunk");
    t.commit_id = rec->intern("commit");
    t.fsync_id = rec->intern("journal_fsync");
    rec->set_arg_names(t.chunk_id, "chunk", "lo", "blocks");
    rec->set_arg_names(t.commit_id, "chunk", "quarantined", "hits");
    rec->set_arg_names(t.fsync_id, "", "", "");
    return t;
  }
};

// ---- journal wire format (docs/SCAN_DRIVER.md) ----------------------------
// All integers little-endian. Header is fixed-size; records are appended,
// each complete record committing one chunk. A torn tail (crash mid-write)
// is detected by running out of bytes mid-record and truncated on resume.

constexpr char kMagic[8] = {'B', 'G', 'C', 'D', 'C', 'K', 'P', '1'};
constexpr std::uint8_t kRecordChunk = 1;
constexpr std::uint8_t kRecordQuarantine = 2;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

/// Bounds-checked sequential reader over the journal bytes.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > size) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > size) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data[pos++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > size) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data[pos++]) << (8 * i);
    return true;
  }
};

void put_gcd_stats(std::string& out, const gcd::GcdStats& s) {
  put_u64(out, s.iterations);
  put_u64(out, s.swaps);
  put_u64(out, s.beta_nonzero);
  put_u64(out, s.divisions);
  for (const auto c : s.approx_cases) put_u64(out, c);
}

bool get_gcd_stats(Cursor& c, gcd::GcdStats& s) {
  if (!c.u64(s.iterations) || !c.u64(s.swaps) || !c.u64(s.beta_nonzero) ||
      !c.u64(s.divisions)) {
    return false;
  }
  for (auto& cc : s.approx_cases) {
    if (!c.u64(cc)) return false;
  }
  return true;
}

void put_simt_stats(std::string& out, const SimtStats& s) {
  put_u64(out, s.rounds);
  put_u64(out, s.warp_rounds);
  put_u64(out, s.lane_iterations);
  put_u64(out, s.branch_slots);
  put_u64(out, s.divergent_warp_rounds);
  put_u64(out, s.active_lane_slots);
  put_u64(out, s.lane_slots);
  put_gcd_stats(out, s.gcd);
}

bool get_simt_stats(Cursor& c, SimtStats& s) {
  return c.u64(s.rounds) && c.u64(s.warp_rounds) && c.u64(s.lane_iterations) &&
         c.u64(s.branch_slots) && c.u64(s.divergent_warp_rounds) &&
         c.u64(s.active_lane_slots) && c.u64(s.lane_slots) &&
         get_gcd_stats(c, s.gcd);
}

/// Everything the driver needs to know about the corpus + config to decide
/// whether a checkpoint is resumable against it.
struct JournalIdentity {
  std::uint64_t digest = 0;
  std::uint64_t m = 0;
  std::uint64_t group_size = 0;
  std::uint64_t chunk_blocks = 0;
  std::uint64_t chunks_total = 0;
  std::uint32_t engine = 0;
  std::uint32_t variant = 0;
  std::uint32_t early_terminate = 0;

  std::string serialize_header() const {
    std::string out(kMagic, sizeof(kMagic));
    put_u64(out, digest);
    put_u64(out, m);
    put_u64(out, group_size);
    put_u64(out, chunk_blocks);
    put_u64(out, chunks_total);
    put_u32(out, engine);
    put_u32(out, variant);
    put_u32(out, early_terminate);
    put_u32(out, 0);  // reserved
    return out;
  }
  static constexpr std::size_t header_size() { return 8 + 5 * 8 + 4 * 4; }
};

/// The per-chunk unit of work as produced by a worker and journaled on
/// commit.
struct ChunkOutcome {
  std::size_t chunk_index = 0;
  bool quarantined = false;
  std::string error;  // set when quarantined
  std::vector<FactorHit> hits;
  std::uint64_t pairs = 0;
  SimtStats simt;
  gcd::GcdStats scalar;
};

std::string serialize_outcome(const ChunkOutcome& o) {
  std::string out;
  if (o.quarantined) {
    out.push_back(char(kRecordQuarantine));
    put_u64(out, o.chunk_index);
    put_u32(out, std::uint32_t(o.error.size()));
    out.append(o.error);
    return out;
  }
  out.push_back(char(kRecordChunk));
  put_u64(out, o.chunk_index);
  put_u64(out, o.pairs);
  put_simt_stats(out, o.simt);
  put_gcd_stats(out, o.scalar);
  put_u32(out, std::uint32_t(o.hits.size()));
  for (const auto& hit : o.hits) {
    put_u64(out, hit.i);
    put_u64(out, hit.j);
    const auto limbs = hit.factor.limbs();
    put_u32(out, std::uint32_t(limbs.size()));
    for (const auto limb : limbs) put_u32(out, limb);
  }
  return out;
}

/// State reconstructed from a valid checkpoint journal.
struct RestoredState {
  std::vector<std::uint8_t> committed;  // per chunk: committed OK
  std::vector<std::uint8_t> handled;    // committed OK or quarantined
  std::vector<FactorHit> hits;
  std::vector<QuarantinedChunk> quarantined;
  std::uint64_t pairs = 0;
  std::uint64_t chunks_committed = 0;
  SimtStats simt;
  gcd::GcdStats scalar;
  std::size_t good_offset = 0;  // file prefix that parsed cleanly
};

/// Parse a journal; returns std::nullopt when the header doesn't match
/// `want` (digest/config mismatch). Throws only on I/O errors. A torn tail
/// is silently dropped (good_offset marks the keep-prefix).
std::optional<RestoredState> parse_journal(const std::string& bytes,
                                           const JournalIdentity& want,
                                           std::string* why) {
  Cursor c{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
  if (bytes.size() < JournalIdentity::header_size() ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    if (why) *why = "not a scan checkpoint (bad magic)";
    return std::nullopt;
  }
  c.pos = sizeof(kMagic);
  JournalIdentity got;
  std::uint32_t reserved = 0;
  c.u64(got.digest);
  c.u64(got.m);
  c.u64(got.group_size);
  c.u64(got.chunk_blocks);
  c.u64(got.chunks_total);
  c.u32(got.engine);
  c.u32(got.variant);
  c.u32(got.early_terminate);
  c.u32(reserved);
  if (got.digest != want.digest || got.m != want.m) {
    if (why) *why = "corpus digest mismatch (different moduli list)";
    return std::nullopt;
  }
  if (got.group_size != want.group_size ||
      got.chunk_blocks != want.chunk_blocks ||
      got.chunks_total != want.chunks_total || got.engine != want.engine ||
      got.variant != want.variant ||
      got.early_terminate != want.early_terminate) {
    if (why) *why = "scan configuration mismatch (grid or engine changed)";
    return std::nullopt;
  }

  RestoredState state;
  state.committed.assign(want.chunks_total, 0);
  state.handled.assign(want.chunks_total, 0);
  state.good_offset = c.pos;

  while (c.pos < c.size) {
    std::uint8_t kind = 0;
    std::uint64_t chunk = 0;
    if (!c.u8(kind) || !c.u64(chunk)) break;
    if (chunk >= want.chunks_total) break;  // corrupt record: stop here
    if (kind == kRecordChunk) {
      std::uint64_t pairs = 0;
      SimtStats simt;
      gcd::GcdStats scalar;
      std::uint32_t nhits = 0;
      if (!c.u64(pairs) || !get_simt_stats(c, simt) ||
          !get_gcd_stats(c, scalar) || !c.u32(nhits)) {
        break;
      }
      std::vector<FactorHit> hits(nhits);
      bool ok = true;
      for (auto& hit : hits) {
        std::uint32_t nlimbs = 0;
        if (!c.u64(hit.i) || !c.u64(hit.j) || !c.u32(nlimbs)) {
          ok = false;
          break;
        }
        // Hit factors are journaled as 32-bit BigInt limbs regardless of the
        // scan limb width (BULKGCD_LIMB32), so checkpoints are portable
        // across limb configurations.
        std::vector<std::uint32_t> limbs(nlimbs);
        for (auto& limb : limbs) {
          if (!c.u32(limb)) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
        hit.factor = mp::BigInt::from_limbs(limbs);
      }
      if (!ok) break;
      if (!state.handled[chunk]) {  // tolerate duplicates defensively
        state.committed[chunk] = state.handled[chunk] = 1;
        ++state.chunks_committed;
        state.pairs += pairs;
        state.simt += simt;
        state.scalar += scalar;
        state.hits.insert(state.hits.end(),
                          std::make_move_iterator(hits.begin()),
                          std::make_move_iterator(hits.end()));
      }
    } else if (kind == kRecordQuarantine) {
      std::uint32_t len = 0;
      if (!c.u32(len) || c.pos + len > c.size) break;
      std::string error(bytes.data() + c.pos, len);
      c.pos += len;
      if (!state.handled[chunk]) {
        state.handled[chunk] = 1;
        state.quarantined.push_back({std::size_t(chunk), std::move(error)});
      }
    } else {
      break;  // unknown record kind: treat as corruption, drop the tail
    }
    state.good_offset = c.pos;  // full record parsed: advance the keep-mark
  }
  return state;
}

/// Open-for-append journal with fsync cadence.
class Journal {
 public:
  /// fsync_hist (optional) receives the latency of every flush+fsync — the
  /// durability cost a production deployment needs to watch.
  Journal(const std::filesystem::path& path, std::size_t fsync_every,
          obs::HistogramMetric* fsync_hist = nullptr,
          DriverTrace trace = {})
      : path_(path),
        fsync_every_(std::max<std::size_t>(1, fsync_every)),
        fsync_hist_(fsync_hist),
        trace_(trace) {}
  ~Journal() { close(); }

  void create_fresh(const JournalIdentity& id) {
    close();
    file_ = std::fopen(path_.string().c_str(), "wb");
    if (!file_) {
      throw std::runtime_error("scan_driver: cannot write checkpoint " +
                               path_.string());
    }
    const std::string header = id.serialize_header();
    write_all(header);
    flush_and_sync();
  }

  void open_for_resume(std::size_t good_offset) {
    close();
    // Drop any torn tail before appending so the next reader never sees a
    // partial record followed by complete ones.
    std::error_code ec;
    const auto actual = std::filesystem::file_size(path_, ec);
    if (!ec && actual > good_offset) {
      std::filesystem::resize_file(path_, good_offset);
    }
    file_ = std::fopen(path_.string().c_str(), "ab");
    if (!file_) {
      throw std::runtime_error("scan_driver: cannot append to checkpoint " +
                               path_.string());
    }
  }

  void commit(const ChunkOutcome& outcome) {
    write_all(serialize_outcome(outcome));
    if (++commits_since_sync_ >= fsync_every_) flush_and_sync();
  }

  void finish() {
    if (file_) flush_and_sync();
  }

 private:
  void write_all(const std::string& bytes) {
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      throw std::runtime_error("scan_driver: checkpoint write failed: " +
                               path_.string());
    }
  }
  void flush_and_sync() {
    obs::ScopedSpan span(fsync_hist_);
    obs::TraceSpan tspan(trace_.rec, trace_.fsync_id);
    if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      throw std::runtime_error("scan_driver: checkpoint fsync failed: " +
                               path_.string());
    }
    commits_since_sync_ = 0;
  }
  void close() {
    if (file_) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  std::filesystem::path path_;
  std::size_t fsync_every_;
  obs::HistogramMetric* fsync_hist_;
  DriverTrace trace_;
  std::size_t commits_since_sync_ = 0;
  std::FILE* file_ = nullptr;
};

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

// ---- StreamProgressSink ---------------------------------------------------

void StreamProgressSink::on_progress(const ScanProgress& p) {
  const double pct =
      p.pairs_total == 0 ? 100.0
                         : 100.0 * double(p.pairs_done) / double(p.pairs_total);
  // No throughput yet (first record of a run, or a pure-restore invocation
  // that committed nothing): the ETA is unknown, not zero seconds.
  char eta[32];
  if (p.pairs_per_second > 0.0 && std::isfinite(p.eta_seconds)) {
    std::snprintf(eta, sizeof(eta), "%.0fs", p.eta_seconds);
  } else {
    std::snprintf(eta, sizeof(eta), "--");
  }
  std::fprintf(out_,
               "[scan] chunks %llu/%llu  pairs %llu/%llu (%5.1f%%)  "
               "%.0f pairs/s  %.2f blocks/s  hits %llu  quarantined %llu  "
               "eta %s\n",
               (unsigned long long)p.chunks_done,
               (unsigned long long)p.chunks_total,
               (unsigned long long)p.pairs_done,
               (unsigned long long)p.pairs_total, pct, p.pairs_per_second,
               p.blocks_per_second, (unsigned long long)p.hits,
               (unsigned long long)p.quarantined, eta);
  std::fflush(out_);
}

void StreamProgressSink::on_hit(const FactorHit& hit) {
  std::fprintf(out_, "[hit] keys %zu and %zu share a %zu-bit prime\n", hit.i,
               hit.j, hit.factor.bit_length());
  std::fflush(out_);
}

void StreamProgressSink::on_quarantine(std::size_t chunk_index,
                                       const std::string& error) {
  std::fprintf(out_, "[quarantine] chunk %zu failed twice: %s\n", chunk_index,
               error.c_str());
  std::fflush(out_);
}

// ---- the driver -----------------------------------------------------------

ScanReport run_resumable_scan(std::span<const mp::BigInt> moduli,
                              const ScanConfig& config) {
  ScanReport report;
  Timer timer;
  const std::size_t m = moduli.size();
  if (m < 2) {
    report.complete = true;
    return report;
  }

  // Resolve the execution backend once for the whole scan (environment
  // override + CPU probe). Backend and ISA are deliberately NOT part of the
  // journal identity below: every backend produces bit-identical hits and
  // stats, so a checkpoint written under one resumes under any other.
  AllPairsConfig pairs_cfg = config.pairs;
  resolve_backend(pairs_cfg);

  const ScanCorpus scan(moduli);
  const std::size_t cap = scan.max_limbs();
  const BlockGrid grid(m, pairs_cfg.group_size);
  const std::size_t total_blocks = grid.block_count();
  const std::size_t chunk_blocks = std::max<std::size_t>(1, config.chunk_blocks);
  const std::size_t chunks_total =
      (total_blocks + chunk_blocks - 1) / chunk_blocks;
  report.chunks_total = chunks_total;

  auto chunk_range = [&](std::size_t chunk) {
    const std::size_t lo = chunk * chunk_blocks;
    return std::pair(lo, std::min(lo + chunk_blocks, total_blocks));
  };

  // Stage the corpus once for the whole scan. Deliberately NOT part of the
  // journal identity: staged and unstaged sweeps produce bit-identical
  // results, so a checkpoint written by one resumes under the other.
  std::optional<CorpusPanels<ScanLimb>> panels;
  if (pairs_cfg.engine == EngineKind::kSimt && pairs_cfg.staged) {
    panels.emplace(scan, grid.r, cap + kBatchPadLimbs);
  }

  DriverTelemetry tele = DriverTelemetry::resolve(config.pairs.metrics);
  const DriverTrace dtr = DriverTrace::resolve(pairs_cfg.trace);
  if (dtr.rec != nullptr) dtr.rec->set_thread_name("driver");

  JournalIdentity identity;
  identity.digest = rsa::corpus_digest(moduli);
  identity.m = m;
  identity.group_size = grid.r;
  identity.chunk_blocks = chunk_blocks;
  identity.chunks_total = chunks_total;
  identity.engine = std::uint32_t(config.pairs.engine);
  identity.variant = std::uint32_t(config.pairs.variant);
  identity.early_terminate = config.pairs.early_terminate ? 1 : 0;

  // ---- restore ------------------------------------------------------------
  RestoredState state;
  state.committed.assign(chunks_total, 0);
  state.handled.assign(chunks_total, 0);

  std::optional<Journal> journal;
  if (!config.checkpoint.empty()) {
    journal.emplace(config.checkpoint, config.fsync_every, tele.fsync_seconds,
                    dtr);
    std::error_code ec;
    if (std::filesystem::exists(config.checkpoint, ec)) {
      std::string why;
      auto restored =
          parse_journal(read_file_bytes(config.checkpoint), identity, &why);
      if (restored) {
        state = std::move(*restored);
        report.resumed = state.chunks_committed > 0 ||
                         !state.quarantined.empty();
        journal->open_for_resume(state.good_offset);
      } else if (config.discard_mismatched_checkpoint) {
        journal->create_fresh(identity);
      } else {
        throw std::runtime_error("scan_driver: checkpoint " +
                                 config.checkpoint.string() +
                                 " is not resumable for this scan: " + why);
      }
    } else {
      journal->create_fresh(identity);
    }
  }

  // Checkpoint-restored work counts as committed, so the scan_* counters
  // end the run exactly equal to the final report even after a resume.
  if (state.chunks_committed > 0 || !state.quarantined.empty()) {
    if (tele.chunks_restored) {
      tele.chunks_restored->add(state.chunks_committed);
      tele.chunks_committed->add(state.chunks_committed);
      tele.chunks_quarantined->add(state.quarantined.size());
      tele.pairs->add(state.pairs);
      tele.pairs_restored->add(state.pairs);
      tele.hits->add(state.hits.size());
    }
    fold_engine_stats(config.pairs.metrics, state.simt, state.scalar);
  }

  // ---- aggregation seeded from the checkpoint -----------------------------
  AllPairsResult& agg = report.result;
  agg.input_bytes = std::uint64_t(m) * cap * sizeof(ScanLimb);
  agg.pairs_tested = state.pairs;
  agg.simt = state.simt;
  agg.scalar = state.scalar;
  agg.hits = std::move(state.hits);
  // The journal doesn't persist full_modulus — it's derivable, and older
  // checkpoints predate the flag — so recompute it for restored hits.
  for (auto& hit : agg.hits) {
    hit.full_modulus = hit.i < m && hit.j < m &&
                       (hit.factor == moduli[hit.i] ||
                        hit.factor == moduli[hit.j]);
  }
  report.quarantined = std::move(state.quarantined);
  report.chunks_done = state.chunks_committed;

  std::uint64_t blocks_done = 0;
  for (std::size_t chunk = 0; chunk < chunks_total; ++chunk) {
    if (state.committed[chunk]) {
      const auto [lo, hi] = chunk_range(chunk);
      blocks_done += hi - lo;
    }
  }
  agg.blocks_run = blocks_done;

  std::vector<std::size_t> pending;
  for (std::size_t chunk = 0; chunk < chunks_total; ++chunk) {
    if (!state.handled[chunk]) pending.push_back(chunk);
  }
  const std::size_t launch_total =
      config.stop_after_chunks == 0
          ? pending.size()
          : std::min(pending.size(), config.stop_after_chunks);

  // ---- worker: process one chunk with retry-with-isolation ----------------
  auto process = [&](std::size_t chunk) {
    ChunkOutcome outcome;
    outcome.chunk_index = chunk;
    const auto [lo, hi] = chunk_range(chunk);
    obs::ScopedSpan chunk_span(tele.chunk_seconds);
    obs::TraceSpan chunk_tspan(dtr.rec, dtr.chunk_id);
    chunk_tspan.set_args(chunk, lo, hi - lo);
    std::string first_error;
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        if (attempt == 1 && tele.chunks_retried) tele.chunks_retried->inc();
        if (config.chunk_hook) config.chunk_hook(chunk, attempt);
        AllPairsConfig pairs_config = pairs_cfg;
        // Retry runs on the scalar engine: the simplest code path, isolated
        // from whatever state the first attempt died in.
        if (attempt == 1) pairs_config.engine = EngineKind::kScalar;
        BlockSweeper sweeper(scan, grid, pairs_config, cap,
                             attempt == 0 && panels ? &*panels : nullptr);
        sweeper.run_blocks(lo, hi);
        auto out = sweeper.take();
        outcome.hits = std::move(out.hits);
        outcome.pairs = out.pairs;
        outcome.simt = out.simt;
        outcome.scalar = out.scalar;
        return outcome;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          first_error = e.what();
        } else {
          outcome.quarantined = true;
          outcome.error = "attempt 1 (" + std::string(to_string(
                              config.pairs.variant)) + "): " + first_error +
                          "; scalar retry: " + e.what();
        }
      } catch (...) {
        if (attempt == 0) {
          first_error = "unknown error";
        } else {
          outcome.quarantined = true;
          outcome.error = first_error + "; scalar retry: unknown error";
        }
      }
    }
    return outcome;
  };

  // ---- commit path (driver thread only) -----------------------------------
  std::uint64_t pairs_this_run = 0;
  std::uint64_t blocks_this_run = 0;
  std::uint64_t committed_this_run = 0;

  auto emit_progress = [&] {
    if (!config.sink && !tele.pairs_per_second) return;
    ScanProgress p;
    p.chunks_done = report.chunks_done;
    p.chunks_total = chunks_total;
    p.blocks_done = blocks_done;
    p.blocks_total = total_blocks;
    p.pairs_done = agg.pairs_tested;
    p.pairs_total = grid.total_pairs();
    p.hits = agg.hits.size();
    p.quarantined = report.quarantined.size();
    p.elapsed_seconds = timer.seconds();
    // Rates stay 0 and eta_seconds stays 0 (rendered as "eta --") until this
    // run has committed work over a nonzero interval — a resumed run that
    // restored every chunk, or a first record fired before the clock ticks,
    // must not divide by zero into inf/NaN.
    if (p.elapsed_seconds > 0 && pairs_this_run > 0) {
      const std::uint64_t remaining =
          p.pairs_total > p.pairs_done ? p.pairs_total - p.pairs_done : 0;
      p.pairs_per_second = double(pairs_this_run) / p.elapsed_seconds;
      // Actual committed block count — NOT committed_this_run * chunk_blocks,
      // which overstates the rate (and skews the ETA) whenever the final
      // chunk is shorter than chunk_blocks or a chunk was quarantined.
      p.blocks_per_second = double(blocks_this_run) / p.elapsed_seconds;
      p.eta_seconds = double(remaining) / p.pairs_per_second;
    }
    // The progress pipeline doubles as the gauge feed: every record a sink
    // sees is also visible to metrics scrapes/snapshots.
    if (tele.pairs_per_second) {
      tele.pairs_per_second->set(p.pairs_per_second);
      tele.blocks_per_second->set(p.blocks_per_second);
      tele.progress_ratio->set(
          p.pairs_total == 0 ? 1.0
                             : double(p.pairs_done) / double(p.pairs_total));
      tele.eta_seconds->set(p.eta_seconds);
    }
    if (config.sink) config.sink->on_progress(p);
  };

  auto commit = [&](ChunkOutcome outcome) {
    if (dtr.rec != nullptr) {
      dtr.rec->instant(dtr.commit_id, 0, outcome.chunk_index,
                       outcome.quarantined ? 1 : 0, outcome.hits.size());
    }
    if (journal) journal->commit(outcome);
    ++committed_this_run;
    if (outcome.quarantined) {
      if (tele.chunks_quarantined) tele.chunks_quarantined->inc();
      if (config.sink) {
        config.sink->on_quarantine(outcome.chunk_index, outcome.error);
      }
      report.quarantined.push_back(
          {outcome.chunk_index, std::move(outcome.error)});
    } else {
      if (tele.chunks_committed) {
        tele.chunks_committed->inc();
        tele.pairs->add(outcome.pairs);
        tele.hits->add(outcome.hits.size());
      }
      fold_engine_stats(config.pairs.metrics, outcome.simt, outcome.scalar);
      ++report.chunks_done;
      ++report.chunks_done_this_run;
      const auto [lo, hi] = chunk_range(outcome.chunk_index);
      blocks_done += hi - lo;
      blocks_this_run += hi - lo;
      agg.blocks_run = blocks_done;
      agg.pairs_tested += outcome.pairs;
      pairs_this_run += outcome.pairs;
      agg.simt += outcome.simt;
      agg.scalar += outcome.scalar;
      if (config.sink) {
        for (const auto& hit : outcome.hits) config.sink->on_hit(hit);
      }
      agg.hits.insert(agg.hits.end(),
                      std::make_move_iterator(outcome.hits.begin()),
                      std::make_move_iterator(outcome.hits.end()));
    }
    if (committed_this_run % std::max<std::size_t>(1, config.progress_every) ==
        0) {
      emit_progress();
    }
  };

  // ---- execution ----------------------------------------------------------
  // Chunks are sharded over the workers through the same work-stealing tile
  // scheduler as the raw sweep, one chunk per scheduler tile: each worker
  // walks its own contiguous run of pending chunks (cache-friendly panel
  // reuse) and steals from a loaded neighbour when it drains. Tiles
  // therefore complete OUT OF ORDER; every outcome flows through the
  // driver-thread commit queue below, so journal records stay whole
  // per-chunk appends (keyed by chunk_index under the corpus-digest header)
  // and the torn-tail recovery rule is untouched — parse_journal indexes
  // records by chunk, never by position.
  if (launch_total > 0) {
    if (config.pairs.pool_threads == 1) {
      for (std::size_t k = 0; k < launch_total; ++k) {
        commit(process(pending[k]));
      }
    } else {
      std::optional<ThreadPool> local_pool;
      if (config.pairs.pool_threads > 1) {
        local_pool.emplace(config.pairs.pool_threads);
      }
      ThreadPool& pool = local_pool ? *local_pool : global_pool();
      std::mutex mu;
      std::condition_variable cv;
      std::deque<ChunkOutcome> done_queue;

      const std::size_t workers =
          config.pairs.pool_threads > 1 ? config.pairs.pool_threads
                                        : pool.size();
      const TileScheduler sched(launch_total, /*tile_items=*/1, workers);
      // The schedule blocks until every chunk is processed, while commits
      // must keep flowing on this (the driver) thread — run it on a
      // sidecar thread and collect outcomes as they land. process() already
      // converts every failure into a quarantine outcome, so the scheduler
      // body never throws.
      std::thread orchestrator([&] {
        if (dtr.rec != nullptr) dtr.rec->set_thread_name("orchestrator");
        sched.run(
            &pool,
            [&](std::size_t, const TileRange& t) {
              for (std::size_t k = t.lo; k < t.hi; ++k) {
                ChunkOutcome outcome = process(pending[k]);
                {
                  std::lock_guard lock(mu);
                  done_queue.push_back(std::move(outcome));
                }
                cv.notify_one();
              }
            },
            dtr.rec);
      });

      std::size_t collected = 0;
      while (collected < launch_total) {
        ChunkOutcome outcome;
        {
          std::unique_lock lock(mu);
          cv.wait(lock, [&] { return !done_queue.empty(); });
          outcome = std::move(done_queue.front());
          done_queue.pop_front();
        }
        ++collected;
        commit(std::move(outcome));
      }
      orchestrator.join();
    }
  }

  if (journal) journal->finish();

  report.complete =
      report.chunks_done + report.quarantined.size() == chunks_total;
  // Final progress record (covers runs whose commit count isn't a multiple
  // of progress_every, and pure-restore invocations).
  emit_progress();

  agg.seconds = timer.seconds();
  std::sort(agg.hits.begin(), agg.hits.end(),
            [](const FactorHit& a, const FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return report;
}

}  // namespace bulkgcd::bulk
