// Scan-limb selection and the corpus conversion layer.
//
// mp::BigInt stays fixed at the paper's d = 32 word size (the RSA layer —
// Montgomery, prime sieve, corpus generation — is hard-wired to 32-bit
// limbs), but the bulk scan engines are generic over their limb type: the
// BULKGCD_LIMB32 CMake option (ON by default) picks 32-bit scan limbs, OFF
// picks 64-bit ones (W = 4 vector lanes instead of W = 8 in bulk/vec/).
// ScanCorpusT repacks a BigInt corpus into flat ScanLimb storage once per
// scan, so every hot path downstream — staging panels, per-lane loads, the
// full-modulus check — works on scan limbs without per-pair conversions.
// GCDs and hits are value-level quantities, so results are bit-identical
// across limb widths; only SimtStats iteration counts differ (fewer, wider
// limb operations per value).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "mp/bigint.hpp"
#include "mp/limb_traits.hpp"

namespace bulkgcd::bulk {

/// The limb type both bulk engines are instantiated with; memory-traffic
/// accounting (AllPairsResult::input_bytes) derives from it. Selected by the
/// BULKGCD_LIMB32 CMake option; defaults to the paper's d = 32.
#if defined(BULKGCD_SCAN_LIMB_BITS) && BULKGCD_SCAN_LIMB_BITS == 64
using ScanLimb = std::uint64_t;
#else
using ScanLimb = std::uint32_t;
#endif

/// Repack a little-endian limb array from one limb width to another,
/// normalizing (no high zero limbs) on the way out. Value-preserving for any
/// source/destination width up to 64 bits; only runs at corpus staging and
/// hit conversion time, never per pair.
template <mp::LimbType Dst, mp::LimbType Src>
std::vector<Dst> repack_limbs(std::span<const Src> src) {
  constexpr int kSrcBits = mp::limb_bits<Src>;
  constexpr int kDstBits = mp::limb_bits<Dst>;
  std::vector<Dst> out;
  out.reserve((src.size() * kSrcBits + kDstBits - 1) / kDstBits);
  __extension__ using Acc = unsigned __int128;
  Acc acc = 0;
  int acc_bits = 0;
  for (const Src limb : src) {
    acc |= Acc(limb) << acc_bits;
    acc_bits += kSrcBits;
    while (acc_bits >= kDstBits) {
      out.push_back(Dst(acc));
      acc >>= kDstBits;
      acc_bits -= kDstBits;
    }
  }
  if (acc_bits > 0) out.push_back(Dst(acc));
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

/// Convert scan limbs back to the library-default BigInt (hit reporting,
/// factor verification — everything outside the hot loop speaks BigInt).
template <mp::LimbType Src>
mp::BigInt to_default_bigint(std::span<const Src> limbs) {
  if constexpr (std::is_same_v<Src, std::uint32_t>) {
    return mp::BigInt::from_limbs(limbs);
  } else {
    return mp::BigInt::from_limbs(repack_limbs<std::uint32_t, Src>(limbs));
  }
}

/// A BigInt corpus repacked once into flat Limb storage: per-modulus limb
/// spans (normalized), cached bit lengths, and the capacity every engine of
/// the scan is sized with. This is the single conversion point between the
/// d = 32 BigInt world and the configurable scan-limb world.
template <mp::LimbType Limb>
class ScanCorpusT {
 public:
  ScanCorpusT() = default;

  explicit ScanCorpusT(std::span<const mp::BigInt> moduli)
      : offsets_(moduli.size() + 1, 0),
        sizes_(moduli.size(), 0),
        bits_(moduli.size(), 0) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      const std::size_t n = repacked_size(moduli[i]);
      offsets_[i] = total;
      sizes_[i] = n;
      bits_[i] = moduli[i].bit_length();
      cap_ = std::max(cap_, n);
      total += n;
    }
    offsets_[moduli.size()] = total;
    data_.resize(total);
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      const auto src = moduli[i].limbs();
      if constexpr (std::is_same_v<Limb, std::uint32_t>) {
        std::copy(src.begin(), src.end(), data_.begin() + offsets_[i]);
      } else {
        const auto packed = repack_limbs<Limb>(src);
        std::copy(packed.begin(), packed.end(), data_.begin() + offsets_[i]);
      }
    }
  }

  std::size_t size() const noexcept { return sizes_.size(); }
  /// Normalized limbs of modulus i (little-endian).
  std::span<const Limb> limbs(std::size_t i) const noexcept {
    return {data_.data() + offsets_[i], sizes_[i]};
  }
  /// Cached bit_length() of modulus i — identical across limb widths.
  std::size_t bits(std::size_t i) const noexcept { return bits_[i]; }
  std::span<const std::size_t> bit_lengths() const noexcept { return bits_; }
  /// Max limb count over the corpus, in Limb units (engine capacity).
  std::size_t max_limbs() const noexcept { return cap_; }

 private:
  static std::size_t repacked_size(const mp::BigInt& v) noexcept {
    constexpr std::size_t kLB = std::size_t(mp::limb_bits<Limb>);
    return (v.bit_length() + kLB - 1) / kLB;
  }

  std::vector<Limb> data_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> bits_;
  std::size_t cap_ = 0;
};

using ScanCorpus = ScanCorpusT<ScanLimb>;

}  // namespace bulkgcd::bulk
