// Work-stealing tile scheduler for the sharded all-pairs sweep.
//
// The Section-VI block triangle is a flat sequence of blocks; saturating the
// machine means every core runs a sweeper over its own shard of that
// sequence, not one thread dispatching batches while the rest idle. The
// scheduler partitions the block range into contiguous *tiles* and hands
// each worker a deque of them:
//
//   * Initial assignment is contiguous and balanced — worker w owns one
//     consecutive run of tiles. Blocks are enumerated row-major over the
//     group triangle, so consecutive blocks share their i-group and a
//     worker's tiles therefore revisit the same CorpusPanels panels
//     (cache-conscious by construction; see docs/GPU_PORTING.md for the
//     tile → CUDA thread-block mapping).
//   * A worker pops tiles from the *front* of its own deque, preserving the
//     locality order of its run.
//   * A worker whose deque is empty steals *half* of a victim's remaining
//     tiles from the *back* of the victim's deque — the blocks furthest
//     from where the victim is currently working — classic steal-half, so
//     a skewed tile (one block full of slow worst-case pairs) ends up
//     shared instead of serializing the sweep.
//
// Determinism: the scheduler only decides WHERE a tile runs. Every tile is
// executed exactly once, all merged quantities downstream (FactorHit sets,
// SimtStats, scan_*/simt_* counters, LocalHistogram bins) are commutative
// integer sums followed by a canonical sort, so results are bit-identical
// across worker counts, tile shapes, and steal interleavings — asserted by
// tests/tile_scheduler_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace bulkgcd {
class ThreadPool;
}

namespace bulkgcd::obs {
class TraceRecorder;
}

namespace bulkgcd::bulk {

/// One tile: the contiguous item (block) range [lo, hi).
struct TileRange {
  std::size_t index = 0;  ///< tile ordinal in [0, tile_count())
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Execution accounting for one TileScheduler::run (steal traffic is the
/// load-balance signal the tests assert on).
struct TileSchedulerStats {
  std::uint64_t tiles_executed = 0;
  std::uint64_t steals = 0;        ///< successful steal operations
  std::uint64_t tiles_stolen = 0;  ///< tiles moved by those steals
};

class TileScheduler {
 public:
  /// Partition [0, total_items) into ⌈total/tile_items⌉ tiles driven by
  /// `workers` workers. tile_items == 0 picks auto_tile_items(); workers is
  /// clamped to at least 1 (a 1-worker schedule runs inline on the caller).
  TileScheduler(std::size_t total_items, std::size_t tile_items,
                std::size_t workers);

  /// Default tile size: ~4 tiles per worker so stealing has granularity to
  /// work with, clamped to [1, total].
  static std::size_t auto_tile_items(std::size_t total_items,
                                     std::size_t workers) noexcept;

  std::size_t total_items() const noexcept { return total_; }
  std::size_t tile_items() const noexcept { return tile_items_; }
  std::size_t tile_count() const noexcept { return tiles_; }
  std::size_t worker_count() const noexcept { return workers_; }

  /// Tile t's block range. Tiles partition [0, total) exactly: tile 0
  /// starts at 0, tile t+1 starts where tile t ends, the last tile ends at
  /// total (and may be short).
  TileRange tile(std::size_t t) const noexcept;

  /// Worker that tile t is initially assigned to (before any stealing):
  /// contiguous balanced runs, earlier workers take the remainder.
  std::size_t home_worker(std::size_t t) const noexcept;

  /// body(worker, tile): worker ∈ [0, worker_count()) identifies the
  /// executing worker so callers can keep per-worker state (sweepers,
  /// engines, local histograms) without locks — a worker slot is only ever
  /// touched by its own worker, and run() joining all workers sequences the
  /// final merge after every body call.
  using Body = std::function<void(std::size_t worker, const TileRange& tile)>;

  /// Execute body over every tile exactly once; blocks until all tiles are
  /// done. Runs inline on the caller when worker_count() == 1, pool is
  /// null, or the caller is already one of pool's workers (same nested-use
  /// degradation as ThreadPool::parallel_for — worker loops enqueued on a
  /// saturated pool could otherwise never run). Otherwise submits one
  /// worker loop per worker to `pool` and waits. An exception thrown by
  /// body aborts the schedule (remaining tiles are not started) and is
  /// rethrown here, first one wins.
  ///
  /// trace (optional, obs/trace.hpp): each tile execution becomes a
  /// "tile" span on its worker's track (args tile/lo/items), each
  /// successful steal a "steal" instant (args thief/victim/tiles), each
  /// worker-loop exit a "worker_done" instant (args worker/executed) — the
  /// idle-vs-steal timeline the aggregate steal counters can't show.
  /// Scheduling decisions never depend on it; null is the zero-cost path.
  TileSchedulerStats run(ThreadPool* pool, const Body& body,
                         obs::TraceRecorder* trace = nullptr) const;

 private:
  std::size_t total_ = 0;
  std::size_t tile_items_ = 1;
  std::size_t tiles_ = 0;
  std::size_t workers_ = 1;
};

}  // namespace bulkgcd::bulk
