#include "bulk/simt.hpp"

namespace bulkgcd::bulk {

template class SimtBatch<std::uint32_t, ColumnMatrix>;
template class SimtBatch<std::uint32_t, RowMatrix>;

}  // namespace bulkgcd::bulk
