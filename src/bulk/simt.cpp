#include "bulk/simt.hpp"

namespace bulkgcd::bulk {

template class SimtBatch<std::uint32_t, ColumnMatrix>;
template class SimtBatch<std::uint32_t, RowMatrix>;
template class SimtBatch<std::uint64_t, ColumnMatrix>;
template class SimtBatch<std::uint64_t, RowMatrix>;

}  // namespace bulkgcd::bulk
