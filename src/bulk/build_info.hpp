// Build/runtime identity of this bulkgcd process — the one description of
// "what exactly is running here" shared by the CLI startup banners
// (resumable_scan, keyintake_daemon) and the MetricsHttpServer GET /status
// endpoint, so the version an operator sees in a log line and the version a
// monitor scrapes can never disagree.
#pragma once

#include <string>
#include <vector>

namespace bulkgcd::bulk {

struct BuildInfo {
  std::string version;        ///< project version (CMake PROJECT_VERSION)
  int limb_bits = 0;          ///< ScanLimb width: 32 or 64
  /// Every backend leg compiled into this binary, in dispatch-preference
  /// order ("lockstep", "staged", "vector-portable", "vector-avx2" when the
  /// AVX2 TU is built in).
  std::vector<std::string> compiled_backends;
  /// The backend a default staged-SIMT config resolves to on THIS machine
  /// right now — CPU probe plus the BULKGCD_FORCE_BACKEND override, exactly
  /// what a scan launched here would run.
  std::string active_backend;
};

/// Probe the running process (resolve_backend on a default config).
BuildInfo query_build_info();

/// One-object JSON status document; uptime_seconds is the caller's (the
/// registry's, typically) so /status matches /metrics.
std::string build_info_json(const BuildInfo& info, double uptime_seconds);

/// One-line human banner for CLI startup:
/// "bulkgcd 1.0.0 | limbs 64-bit | backends lockstep,... | active staged".
std::string build_info_line(const BuildInfo& info);

}  // namespace bulkgcd::bulk
