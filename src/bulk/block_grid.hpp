// Geometry of the Section-VI block triangle plus a reusable per-worker
// sweeper, shared by the one-shot all_pairs_gcd() and the resumable
// ScanDriver so both enumerate exactly the same pairs with exactly the same
// per-pair early-terminate rule (Section V defines the RSA bit size s per
// key pair, NOT per corpus — a corpus-wide threshold silently drops hits
// between small moduli whenever a larger key is present).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bulk/allpairs.hpp"
#include "bulk/scan_corpus.hpp"
#include "bulk/vec/vec_backend.hpp"
#include "gcd/algorithms.hpp"
#include "obs/metrics.hpp"

namespace bulkgcd::bulk {

/// Upper-triangle block decomposition of the m×m pair matrix into
/// ⌈m/r⌉ groups of r. Blocks are indexed row-major: (0,0), (0,1), …,
/// (0,g−1), (1,1), … — the enumeration order all_pairs_gcd has always used.
struct BlockGrid {
  std::size_t m = 0;       ///< corpus size
  std::size_t r = 1;       ///< group size (lanes per block)
  std::size_t groups = 0;  ///< ⌈m/r⌉

  BlockGrid() = default;
  BlockGrid(std::size_t corpus_size, std::size_t group_size)
      : m(corpus_size),
        r(std::max<std::size_t>(
              1, std::min(group_size, std::max<std::size_t>(1, corpus_size)))),
        groups((corpus_size + r - 1) / r) {}

  std::size_t block_count() const noexcept {
    return groups * (groups + 1) / 2;
  }
  std::uint64_t total_pairs() const noexcept {
    return std::uint64_t(m) * (m - 1) / 2;
  }
  std::size_t group_size(std::size_t g) const noexcept {
    return std::min(r, m - g * r);
  }

  struct Block {
    std::size_t i, j;
  };

  /// Inverse of the row-major triangle enumeration (closed form + fixup, so
  /// it stays O(1) even for million-block grids).
  Block block(std::size_t index) const noexcept;

  /// Pairs tested inside one block (diagonal blocks test each unordered
  /// intra-group pair once).
  std::uint64_t pairs_in_block(Block b) const noexcept;

  /// Pairs covered by the block range [lo, hi).
  std::uint64_t pairs_in_range(std::size_t lo, std::size_t hi) const noexcept;
};

/// Fold engine statistics into the shared simt_*/gcd_* iteration counters.
/// Called at aggregation points only — per committed chunk in the resumable
/// driver (plus once for checkpoint-restored state) and per worker merge in
/// all_pairs_gcd — so the counter totals exactly equal the
/// SimtStats/GcdStats of the final report, with no double counting from
/// retried attempts. No-op when `metrics` is null.
void fold_engine_stats(obs::MetricsRegistry* metrics, const SimtStats& simt,
                       const gcd::GcdStats& scalar);

/// Per-worker sweep state: one scalar engine + one SIMT batch, reused across
/// the blocks a worker processes. Accumulates hits, pair counts, and engine
/// statistics; take() hands them over and resets.
class BlockSweeper {
 public:
  struct Output {
    std::vector<FactorHit> hits;
    std::uint64_t pairs = 0;
    SimtStats simt;
    gcd::GcdStats scalar;
  };

  /// corpus: the scan-limb repack of the moduli (bulk/scan_corpus.hpp),
  /// carrying normalized limb spans and cached bit lengths so per-pair
  /// thresholds are O(1). Must outlive the sweeper.
  /// config must be pre-resolved (resolve_backend) — the sweeper constructs
  /// the engine config.backend names and never re-probes the CPU.
  /// panels: optional staged corpus (built once per scan with the same grid
  /// and capacity_limbs + kBatchPadLimbs padding). When non-null and the
  /// config selects the staged SIMT or vector path, each block round
  /// refreshes the batch by bulk panel copy + broadcast instead of per-lane
  /// loads.
  BlockSweeper(const ScanCorpus& corpus, const BlockGrid& grid,
               const AllPairsConfig& config, std::size_t capacity_limbs,
               const CorpusPanels<ScanLimb>* panels = nullptr);

  void run_block(std::size_t block_index);
  void run_blocks(std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) run_block(b);
  }

  Output take();

 private:
  std::size_t pair_early_bits(std::size_t a, std::size_t b) const noexcept {
    return config_.early_terminate
               ? std::min(corpus_->bits(a), corpus_->bits(b)) / 2
               : 0;
  }

  /// One SIMT block sweep, generic over the executing engine (SimtBatch or
  /// a VecBatchBase) — the round structure, masking, and verification are
  /// backend-invariant; only run()/iteration accounting differ (shimmed in
  /// block_grid.cpp).
  template <typename Engine, typename Record>
  void simt_block_rounds(Engine& eng, std::size_t i, std::size_t i_begin,
                         std::size_t j, std::size_t j_begin, std::size_t j_end,
                         std::size_t i_count, bool staged, Record&& record,
                         std::uint64_t& early_coprime);

  /// Handles into the optional metrics registry, resolved once per sweeper.
  /// Counters flush once per block from plain locals; the per-pair
  /// iteration histogram and the per-round phase spans accumulate into
  /// unsynchronized LocalHistograms, merged once in take(). sweep_* metrics
  /// count locally *executed* work — including blocks later retried or
  /// quarantined — while the exact committed totals live in the scan_* and
  /// simt_*/gcd_* counters fed at the aggregation points
  /// (fold_engine_stats).
  struct Telemetry {
    obs::Counter* blocks = nullptr;
    obs::Counter* pairs = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* full_modulus_hits = nullptr;
    obs::Counter* early_coprime = nullptr;
    obs::LocalHistogram iterations_per_pair;
    obs::LocalHistogram panel_load_seconds;
    obs::LocalHistogram lane_exec_seconds;
    obs::LocalHistogram verify_seconds;
    obs::HistogramMetric* iterations_per_pair_target = nullptr;
    obs::HistogramMetric* panel_load_target = nullptr;
    obs::HistogramMetric* lane_exec_target = nullptr;
    obs::HistogramMetric* verify_target = nullptr;
  };

  /// Interned event ids for the per-round trace spans (null-recorder safe:
  /// absent entirely when config.trace is null, like tele_). The spans
  /// reuse the ScopedLocalSpan phase sites, so the histogram and the
  /// timeline measure the same intervals.
  struct TraceHandles {
    obs::TraceRecorder* rec = nullptr;
    std::uint32_t panel_load = 0;
    std::uint32_t lane_exec = 0;
  };

  const ScanCorpus* corpus_;
  BlockGrid grid_;
  AllPairsConfig config_;
  const CorpusPanels<ScanLimb>* panels_;
  gcd::GcdEngine<ScanLimb> scalar_engine_;
  SimtBatch<ScanLimb, ColumnMatrix> batch_;
  /// The SIMD warp engine, constructed only when config.backend resolved to
  /// kVector; run_block then drives it instead of batch_.
  std::unique_ptr<VecBatchBase<ScanLimb>> vec_;
  Output out_;
  std::unique_ptr<Telemetry> tele_;  ///< null on the null-registry path
  std::unique_ptr<TraceHandles> trace_;  ///< null on the null-recorder path
};

}  // namespace bulkgcd::bulk
