#include "bulk/tile_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"

namespace bulkgcd::bulk {

namespace {

/// Interned event ids for one run's trace wiring, resolved once up front so
/// the worker loops record by id only.
struct SchedulerTrace {
  obs::TraceRecorder* rec = nullptr;
  std::uint32_t tile_id = 0;
  std::uint32_t steal_id = 0;
  std::uint32_t done_id = 0;

  explicit SchedulerTrace(obs::TraceRecorder* trace) : rec(trace) {
    if (rec == nullptr) return;
    tile_id = rec->intern("tile");
    steal_id = rec->intern("steal");
    done_id = rec->intern("worker_done");
    rec->set_arg_names(tile_id, "tile", "lo", "items");
    rec->set_arg_names(steal_id, "thief", "victim", "tiles");
    rec->set_arg_names(done_id, "worker", "executed", "");
  }
};

}  // namespace

TileScheduler::TileScheduler(std::size_t total_items, std::size_t tile_items,
                             std::size_t workers)
    : total_(total_items), workers_(std::max<std::size_t>(1, workers)) {
  tile_items_ = tile_items == 0 ? auto_tile_items(total_, workers_)
                                : std::max<std::size_t>(1, tile_items);
  tile_items_ = std::min(tile_items_, std::max<std::size_t>(1, total_));
  tiles_ = total_ == 0 ? 0 : (total_ + tile_items_ - 1) / tile_items_;
}

std::size_t TileScheduler::auto_tile_items(std::size_t total_items,
                                           std::size_t workers) noexcept {
  if (total_items == 0) return 1;
  const std::size_t target_tiles = std::max<std::size_t>(1, workers) * 4;
  return std::max<std::size_t>(1, total_items / target_tiles);
}

TileRange TileScheduler::tile(std::size_t t) const noexcept {
  const std::size_t lo = t * tile_items_;
  return {t, lo, std::min(lo + tile_items_, total_)};
}

std::size_t TileScheduler::home_worker(std::size_t t) const noexcept {
  // Balanced contiguous runs: the first `rem` workers own one extra tile.
  const std::size_t q = tiles_ / workers_;
  const std::size_t rem = tiles_ % workers_;
  const std::size_t fat_span = (q + 1) * rem;  // tiles owned by fat workers
  if (t < fat_span) return t / (q + 1);
  if (q == 0) return workers_ - 1;  // more workers than tiles
  return rem + (t - fat_span) / q;
}

TileSchedulerStats TileScheduler::run(ThreadPool* pool, const Body& body,
                                      obs::TraceRecorder* trace) const {
  TileSchedulerStats stats;
  if (tiles_ == 0) return stats;

  const SchedulerTrace tr(trace);

  // Degraded/serial path: one worker, no pool, or a nested call from inside
  // the pool itself (enqueued worker loops could never be picked up once
  // the outer level saturates the pool — same rule as parallel_for).
  if (workers_ == 1 || pool == nullptr || pool->inside_pool()) {
    for (std::size_t t = 0; t < tiles_; ++t) {
      const TileRange range = tile(t);
      obs::TraceSpan span(tr.rec, tr.tile_id);
      span.set_args(range.index, range.lo, range.hi - range.lo);
      body(0, range);
    }
    if (tr.rec != nullptr) tr.rec->instant(tr.done_id, 0, 0, tiles_);
    stats.tiles_executed = tiles_;
    return stats;
  }

  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::size_t> q;  // tile ordinals, front = next in home order
  };
  std::vector<WorkerDeque> deques(workers_);
  for (std::size_t t = 0; t < tiles_; ++t) {
    deques[home_worker(t)].q.push_back(t);
  }

  // Tiles not yet popped for execution. Stolen tiles land back in the
  // thief's deque (still unclaimed, re-stealable); the transient window
  // where a steal holds tiles in a local buffer is why idle workers spin
  // on unclaimed > 0 instead of exiting on an all-empty scan.
  std::atomic<std::size_t> unclaimed{tiles_};
  std::atomic<bool> abort{false};
  std::mutex merge_mu;
  std::exception_ptr first_error;

  auto worker_loop = [&](std::size_t me) {
    TileSchedulerStats local;
    std::vector<std::size_t> loot;
    if (tr.rec != nullptr) {
      tr.rec->set_thread_name("worker-" + std::to_string(me));
    }
    while (!abort.load(std::memory_order_relaxed)) {
      std::size_t t = 0;
      bool got = false;
      {
        std::lock_guard lock(deques[me].mu);
        if (!deques[me].q.empty()) {
          t = deques[me].q.front();
          deques[me].q.pop_front();
          got = true;
        }
      }
      if (got) {
        unclaimed.fetch_sub(1, std::memory_order_relaxed);
        try {
          const TileRange range = tile(t);
          obs::TraceSpan span(tr.rec, tr.tile_id);
          span.set_args(range.index, range.lo, range.hi - range.lo);
          body(me, range);
        } catch (...) {
          {
            std::lock_guard lock(merge_mu);
            if (!first_error) first_error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          break;
        }
        ++local.tiles_executed;
        continue;
      }
      // Own deque empty: steal half of some victim's remaining tiles from
      // the back (the blocks furthest from the victim's working position).
      loot.clear();
      std::size_t victim_index = 0;
      for (std::size_t off = 1; off < workers_ && loot.empty(); ++off) {
        victim_index = (me + off) % workers_;
        WorkerDeque& victim = deques[victim_index];
        std::lock_guard lock(victim.mu);
        const std::size_t take = (victim.q.size() + 1) / 2;
        for (std::size_t k = 0; k < take; ++k) {
          loot.push_back(victim.q.back());
          victim.q.pop_back();
        }
      }
      if (!loot.empty()) {
        ++local.steals;
        local.tiles_stolen += loot.size();
        if (tr.rec != nullptr) {
          tr.rec->instant(tr.steal_id, 0, me, victim_index, loot.size());
        }
        std::lock_guard lock(deques[me].mu);
        // Back-of-victim order reversed so the lowest tile ordinal is at
        // the front — the thief walks its loot in home order too.
        for (auto it = loot.rbegin(); it != loot.rend(); ++it) {
          deques[me].q.push_back(*it);
        }
        continue;
      }
      // Nothing anywhere. If every tile has been claimed, the in-flight
      // ones are being executed by their claimants — done here. Otherwise a
      // steal is mid-transfer; yield and rescan.
      if (unclaimed.load(std::memory_order_acquire) == 0) break;
      std::this_thread::yield();
    }
    if (tr.rec != nullptr) {
      tr.rec->instant(tr.done_id, 0, me, local.tiles_executed);
    }
    std::lock_guard lock(merge_mu);
    stats.tiles_executed += local.tiles_executed;
    stats.steals += local.steals;
    stats.tiles_stolen += local.tiles_stolen;
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    futures.push_back(pool->submit([&, w] { worker_loop(w); }));
  }
  for (auto& f : futures) f.get();  // worker loops themselves don't throw
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace bulkgcd::bulk
