// The five Euclidean algorithms of the paper (Section II, III, V):
//   (A) Original   — X ← X mod Y; swap
//   (B) Fast       — exact quotient forced odd, X ← rshift(X − Y·Q)
//   (C) Binary     — Stein's algorithm
//   (D) FastBinary — X ← rshift(X − Y)
//   (E) Approximate — quotient approximation α·D^β from the top two words
// each in a non-terminate and an early-terminate (RSA-moduli) flavor.
//
// GcdEngine owns the two working buffers of Figure 1 plus the division
// scratch; swap(X, Y) exchanges pointers only. Inputs to run() must be odd
// and positive (RSA moduli always are); use gcd_general() for arbitrary
// values.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "gcd/approx.hpp"
#include "gcd/kernels.hpp"
#include "gcd/stats.hpp"
#include "gcd/tracer.hpp"
#include "mp/bigint.hpp"
#include "mp/span_ops.hpp"

namespace bulkgcd::gcd {

enum class Variant : std::uint8_t {
  kOriginal,     ///< (A)
  kFast,         ///< (B)
  kBinary,       ///< (C)
  kFastBinary,   ///< (D)
  kApproximate,  ///< (E) — the paper's contribution
};

constexpr const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::kOriginal: return "Original";
    case Variant::kFast: return "Fast";
    case Variant::kBinary: return "Binary";
    case Variant::kFastBinary: return "FastBinary";
    case Variant::kApproximate: return "Approximate";
    default: return "?";
  }
}

inline constexpr Variant kAllVariants[] = {
    Variant::kOriginal, Variant::kFast, Variant::kBinary, Variant::kFastBinary,
    Variant::kApproximate};

/// Count trailing zeros of a Wide value (> 0).
template <typename Wide>
constexpr int wide_ctz(Wide v) noexcept {
  const auto low = static_cast<std::uint64_t>(v);
  if (low != 0) return std::countr_zero(low);
  if constexpr (sizeof(Wide) > 8) {
    return 64 + std::countr_zero(static_cast<std::uint64_t>(v >> 64));
  }
  return sizeof(Wide) * 8;  // unreachable for v > 0 when Wide <= 64 bits
}

template <mp::LimbType Limb>
struct RunResult {
  bool early_coprime = false;     ///< early-terminate proved the pair coprime
  std::span<const Limb> gcd;      ///< valid until the engine's next run()
};

/// Inline (stack/member) storage for GcdEngine — the CUDA-kernel layout,
/// where every thread's working set has a compile-time-bounded size and no
/// allocation happens per GCD. Use via FixedGcdEngine below.
template <typename Limb, std::size_t N>
struct InlineStorage {
  explicit InlineStorage(std::size_t n) {
    if (n > N) throw std::length_error("InlineStorage: capacity exceeded");
  }
  Limb* data() noexcept { return buffer.data(); }
  const Limb* data() const noexcept { return buffer.data(); }
  auto begin() noexcept { return buffer.begin(); }
  Limb& operator[](std::size_t i) noexcept { return buffer[i]; }
  const Limb& operator[](std::size_t i) const noexcept { return buffer[i]; }
  std::array<Limb, N> buffer{};
};

template <mp::LimbType Limb, typename Storage = std::vector<Limb>>
class GcdEngine {
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  static constexpr int LB = mp::limb_bits<Limb>;

 public:
  /// capacity_limbs: max limb count of either input.
  explicit GcdEngine(std::size_t capacity_limbs)
      : cap_(capacity_limbs + 2),
        buf_a_(cap_),
        buf_b_(cap_),
        scratch_q_(cap_),
        scratch_r_(cap_),
        scratch_m_(2 * cap_) {}

  /// Compute gcd (or prove coprimality when early_bits > 0).
  /// Inputs must be odd, nonzero, with at most capacity limbs.
  /// early_bits: 0 = non-terminate; s/2 for s-bit RSA moduli (Section V).
  template <typename Tracer = NullTracer>
  RunResult<Limb> run(Variant variant, std::span<const Limb> x,
                      std::span<const Limb> y, std::size_t early_bits = 0,
                      GcdStats* stats = nullptr, Tracer* tracer = nullptr) {
    load(x, y);
    GcdStats local;
    GcdStats& st = stats ? *stats : local;
    NullTracer null_tracer;
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      (void)tracer;
      dispatch(variant, early_bits, st, null_tracer);
    } else {
      assert(tracer != nullptr);
      dispatch(variant, early_bits, st, *tracer);
    }
    RunResult<Limb> out;
    out.early_coprime = early_bits > 0 && ly_ > 0;
    out.gcd = std::span<const Limb>(x_, lx_);
    return out;
  }

  std::size_t capacity() const noexcept { return cap_ - 2; }

 private:
  template <typename Tracer>
  void dispatch(Variant variant, std::size_t early_bits, GcdStats& st,
                Tracer& tr) {
    switch (variant) {
      case Variant::kOriginal: original_loop(early_bits, st); break;
      case Variant::kFast: fast_loop(early_bits, st, tr); break;
      case Variant::kBinary: binary_loop(early_bits, st, tr); break;
      case Variant::kFastBinary: fast_binary_loop(early_bits, st, tr); break;
      case Variant::kApproximate: approximate_loop(early_bits, st, tr); break;
    }
  }

  void load(std::span<const Limb> x, std::span<const Limb> y) {
    if (x.size() > capacity() || y.size() > capacity()) {
      throw std::length_error("GcdEngine: input exceeds capacity");
    }
    std::copy(x.begin(), x.end(), buf_a_.begin());
    std::copy(y.begin(), y.end(), buf_b_.begin());
    x_ = buf_a_.data();
    y_ = buf_b_.data();
    xbuf_ = Buffer::kA;
    ybuf_ = Buffer::kB;
    lx_ = mp::normalized_size(x_, x.size());
    ly_ = mp::normalized_size(y_, y.size());
    if (lx_ == 0 || ly_ == 0) {
      throw std::invalid_argument("GcdEngine: inputs must be nonzero");
    }
    if (mp::compare(x_, lx_, y_, ly_) < 0) swap_xy();
  }

  void swap_xy() noexcept {
    std::swap(x_, y_);
    std::swap(lx_, ly_);
    std::swap(xbuf_, ybuf_);
  }

  bool keep_going(std::size_t early_bits) const noexcept {
    if (ly_ == 0) return false;
    if (early_bits == 0) return true;
    return mp::bit_length(y_, ly_) >= early_bits;
  }

  template <typename Tracer>
  void swap_if_less(GcdStats& st, Tracer& tr) {
    if (compare_traced(x_, lx_, y_, ly_, tr, xbuf_, ybuf_) < 0) {
      swap_xy();
      ++st.swaps;
    }
  }

  // ---- (A) Original Euclidean -------------------------------------------
  void original_loop(std::size_t early_bits, GcdStats& st) {
    while (keep_going(early_bits)) {
      ++st.iterations;
      ++st.divisions;
      const mp::DivSizes sizes = mp::divrem(scratch_q_.data(), scratch_r_.data(),
                                            x_, lx_, y_, ly_);
      std::copy(scratch_r_.data(), scratch_r_.data() + sizes.remainder, x_);
      lx_ = sizes.remainder;
      swap_xy();  // X ← Y, Y ← X mod Y
      ++st.swaps;
    }
  }

  // ---- (B) Fast Euclidean ------------------------------------------------
  template <typename Tracer>
  void fast_loop(std::size_t early_bits, GcdStats& st, Tracer& tr) {
    while (keep_going(early_bits)) {
      ++st.iterations;
      tr.mark();
      ++st.divisions;
      const mp::DivSizes sizes = mp::divrem(scratch_q_.data(), scratch_r_.data(),
                                            x_, lx_, y_, ly_);
      std::size_t lq = sizes.quotient;
      assert(lq >= 1 && "X >= Y implies Q >= 1");
      if ((scratch_q_[0] & 1u) == 0) lq = decrement(scratch_q_.data(), lq);
      if (lq == 1) {
        lx_ = fused_submul_strip(x_, lx_, y_, ly_, scratch_q_[0], tr, xbuf_, ybuf_);
      } else {
        // Multi-word quotient: X ← rshift(X − Y·Q) via scratch product.
        const std::size_t lm = mp::mul_schoolbook(scratch_m_.data(), y_, ly_,
                                                  scratch_q_.data(), lq);
        lx_ = mp::sub(x_, x_, lx_, scratch_m_.data(), lm);
        lx_ = mp::strip_trailing_zeros(x_, lx_);
      }
      swap_if_less(st, tr);
    }
  }

  // ---- (C) Binary Euclidean ----------------------------------------------
  template <typename Tracer>
  void binary_loop(std::size_t early_bits, GcdStats& st, Tracer& tr) {
    while (keep_going(early_bits)) {
      ++st.iterations;
      tr.mark();
      tr.read(xbuf_, 0);  // parity test of X
      if ((x_[0] & 1u) == 0) {
        lx_ = halve(x_, lx_, tr, xbuf_);
      } else {
        tr.read(ybuf_, 0);  // parity test of Y
        if ((y_[0] & 1u) == 0) {
          ly_ = halve(y_, ly_, tr, ybuf_);
        } else {
          lx_ = sub_halve(x_, lx_, y_, ly_, tr, xbuf_, ybuf_);
        }
      }
      swap_if_less(st, tr);
    }
  }

  // ---- (D) Fast Binary Euclidean -----------------------------------------
  template <typename Tracer>
  void fast_binary_loop(std::size_t early_bits, GcdStats& st, Tracer& tr) {
    while (keep_going(early_bits)) {
      ++st.iterations;
      tr.mark();
      lx_ = fused_submul_strip(x_, lx_, y_, ly_, Limb{1}, tr, xbuf_, ybuf_);
      swap_if_less(st, tr);
    }
  }

  // ---- (E) Approximate Euclidean -----------------------------------------
  template <typename Tracer>
  void approximate_loop(std::size_t early_bits, GcdStats& st, Tracer& tr) {
    while (keep_going(early_bits)) {
      ++st.iterations;
      tr.mark();
      const ApproxResult<Limb> ar = approx(x_, lx_, y_, ly_);
      st.count_case(ar.which);
      ++st.divisions;
      if (ar.which == ApproxCase::k1) {
        // Whole values fit in 2d bits: finish the step in registers.
        case1_step(ar.alpha, tr);
      } else if (ar.beta == 0) {
        Limb alpha = Limb(ar.alpha);
        if ((alpha & 1u) == 0) --alpha;  // force odd; alpha >= 1 stays
        lx_ = fused_submul_strip(x_, lx_, y_, ly_, alpha, tr, xbuf_, ybuf_);
      } else {
        ++st.beta_nonzero;
        lx_ = fused_submul_shifted_add_strip(x_, lx_, y_, ly_, Limb(ar.alpha),
                                             ar.beta, tr, xbuf_, ybuf_);
      }
      swap_if_less(st, tr);
    }
  }

  /// Case-1 update: X, Y both fit in a Wide register.
  template <typename Tracer>
  void case1_step(Wide alpha, Tracer& tr) {
    for (std::size_t i = 0; i < lx_; ++i) tr.read(xbuf_, i);
    for (std::size_t i = 0; i < ly_; ++i) tr.read(ybuf_, i);
    const Wide xv = lx_ == 2 ? top_two_words(x_, 2) : Wide(x_[0]);
    const Wide yv = ly_ == 2 ? top_two_words(y_, 2) : Wide(y_[0]);
    if ((alpha & 1u) == 0) --alpha;  // exact quotient >= 1, keep it odd
    Wide t = xv - yv * alpha;
    if (t != 0) t >>= wide_ctz(t);
    lx_ = 0;
    while (t != 0) {
      x_[lx_] = Limb(t);
      tr.write(xbuf_, lx_);
      ++lx_;
      t >>= LB;
    }
  }

  /// In-place decrement of an even, nonzero multi-limb value; returns the
  /// normalized size (forcing the Fast-Euclidean quotient odd).
  static std::size_t decrement(Limb* v, std::size_t n) noexcept {
    std::size_t i = 0;
    while (v[i] == 0) {
      v[i] = Limb(~Limb{0});
      ++i;
      assert(i < n);
    }
    --v[i];
    return mp::normalized_size(v, n);
  }

  std::size_t cap_;
  Storage buf_a_, buf_b_;                  // Figure-1 value arrays
  Storage scratch_q_, scratch_r_, scratch_m_;  // division scratch
  Limb* x_ = nullptr;
  Limb* y_ = nullptr;
  std::size_t lx_ = 0, ly_ = 0;
  Buffer xbuf_ = Buffer::kA, ybuf_ = Buffer::kB;
};

/// GcdEngine with inline storage sized for NLimbs-limb inputs: zero heap
/// traffic per construction or run — how the per-thread state lives in the
/// paper's CUDA kernel (local memory with compile-time bounds). Benchmarked
/// against the heap engine in bench_ablation_storage.
template <mp::LimbType Limb, std::size_t NLimbs>
using FixedGcdEngine =
    GcdEngine<Limb, InlineStorage<Limb, 2 * (NLimbs + 2)>>;

// ---- Convenience BigInt-level API ----------------------------------------

/// GCD of two odd positive values via the chosen variant (non-terminate).
template <mp::LimbType Limb>
mp::BigIntT<Limb> gcd_odd(const mp::BigIntT<Limb>& a, const mp::BigIntT<Limb>& b,
                          Variant variant = Variant::kApproximate,
                          GcdStats* stats = nullptr) {
  if (a.is_zero() || b.is_zero() || a.is_even() || b.is_even()) {
    throw std::invalid_argument("gcd_odd: inputs must be odd and positive");
  }
  GcdEngine<Limb> engine(std::max(a.size(), b.size()));
  const auto result = engine.run(variant, a.limbs(), b.limbs(), 0, stats);
  return mp::BigIntT<Limb>::from_limbs(result.gcd);
}

/// General GCD for arbitrary non-negative values: factors out common powers
/// of two (Section II's remark), strips per-operand trailing zeros, then runs
/// the odd-odd engine.
template <mp::LimbType Limb>
mp::BigIntT<Limb> gcd_general(const mp::BigIntT<Limb>& a,
                              const mp::BigIntT<Limb>& b,
                              Variant variant = Variant::kApproximate,
                              GcdStats* stats = nullptr) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  const std::size_t tza = a.trailing_zero_bits();
  const std::size_t tzb = b.trailing_zero_bits();
  const std::size_t common = std::min(tza, tzb);
  mp::BigIntT<Limb> ao = a >> tza;
  mp::BigIntT<Limb> bo = b >> tzb;
  mp::BigIntT<Limb> g = gcd_odd(ao, bo, variant, stats);
  return g << common;
}

/// Outcome of probing one pair of RSA moduli.
template <mp::LimbType Limb>
struct PairProbe {
  bool shares_factor = false;
  mp::BigIntT<Limb> factor;  ///< the common divisor when shares_factor
};

/// Early-terminate GCD of two RSA moduli (Section V): stops as soon as
/// Y drops below s/2 bits, which proves coprimality for products of two
/// ~s/2-bit primes. s is the bit size of the SMALLER modulus: a shared prime
/// divides both, so its size is bounded by the smaller key's prime size —
/// taking the larger modulus would declare mixed-size pairs coprime without
/// testing them.
template <mp::LimbType Limb>
PairProbe<Limb> probe_moduli_pair(const mp::BigIntT<Limb>& n1,
                                  const mp::BigIntT<Limb>& n2,
                                  Variant variant = Variant::kApproximate,
                                  GcdStats* stats = nullptr) {
  const std::size_t s = std::min(n1.bit_length(), n2.bit_length());
  GcdEngine<Limb> engine(std::max(n1.size(), n2.size()));
  const auto result = engine.run(variant, n1.limbs(), n2.limbs(), s / 2, stats);
  PairProbe<Limb> probe;
  if (!result.early_coprime) {
    auto g = mp::BigIntT<Limb>::from_limbs(result.gcd);
    if (g > mp::BigIntT<Limb>(1)) {
      probe.shares_factor = true;
      probe.factor = std::move(g);
    }
  }
  return probe;
}

}  // namespace bulkgcd::gcd
