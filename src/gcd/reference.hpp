// Value-level reference implementations of the five Euclidean algorithms,
// written directly from the paper's pseudocode over BigInt with a *runtime*
// word size d.
//
// Two jobs:
//   1. Differential-testing oracle: the optimized limb engines
//      (gcd/algorithms.hpp, bulk/simt.hpp) must match these step counts and
//      results exactly (tests/gcd_reference_test.cpp).
//   2. Worked-example reproduction: the paper's Tables I-III use d = 4-bit
//      words, which no machine limb provides; these functions regenerate the
//      exact traces (bench_worked_examples).
#pragma once

#include <cstdint>
#include <vector>

#include "gcd/stats.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::gcd {

/// One iteration snapshot (values *before* the update of that iteration).
struct RefTraceStep {
  mp::BigInt x, y;
  std::uint64_t quotient = 0;   ///< (A)/(B): exact Q when it fits 64 bits
  std::uint64_t alpha = 0;      ///< (E): α
  std::size_t beta = 0;         ///< (E): β
  ApproxCase which = ApproxCase::k1;  ///< (E): approx case
};

struct RefRun {
  mp::BigInt gcd;               ///< final X (meaningful unless early_coprime)
  bool early_coprime = false;
  GcdStats stats;
  std::vector<RefTraceStep> trace;  ///< filled only when keep_trace
};

struct RefOptions {
  std::size_t early_bits = 0;   ///< 0 = non-terminate
  bool keep_trace = false;
};

/// (A) Original Euclidean algorithm (X ← X mod Y; swap).
RefRun ref_original(mp::BigInt x, mp::BigInt y, const RefOptions& opt = {});

/// (B) Fast Euclidean algorithm (odd exact quotient + rshift).
RefRun ref_fast(mp::BigInt x, mp::BigInt y, const RefOptions& opt = {});

/// (C) Binary Euclidean algorithm.
RefRun ref_binary(mp::BigInt x, mp::BigInt y, const RefOptions& opt = {});

/// (D) Fast Binary Euclidean algorithm (X ← rshift(X − Y)).
RefRun ref_fast_binary(mp::BigInt x, mp::BigInt y, const RefOptions& opt = {});

/// (E) Approximate Euclidean algorithm with word size d bits (2 <= d <= 32,
/// so every 2-word value fits std::uint64_t — d = 4 reproduces Table III,
/// d = 32 mirrors the production engine).
RefRun ref_approximate(mp::BigInt x, mp::BigInt y, unsigned d,
                       const RefOptions& opt = {});

/// approx(X, Y) at word size d, value level. Exposed for property tests
/// (α·D^β ≤ ⌊X/Y⌋ for all X ≥ Y > 0).
struct RefApprox {
  std::uint64_t alpha;
  std::size_t beta;
  ApproxCase which;
};
RefApprox ref_approx(const mp::BigInt& x, const mp::BigInt& y, unsigned d);

}  // namespace bulkgcd::gcd
