// Memory-access tracer policies for the GCD kernels.
//
// The paper's §IV argues each iteration of (C)/(D)/(E) performs 3·s/d + O(1)
// limb accesses (read X, read Y, write X), 4·s/d when approx returns β > 0,
// and §VI replays those accesses on the UMM to argue semi-obliviousness.
// Kernels are templated on a Tracer; NullTracer compiles to nothing so the
// performance path pays zero cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bulkgcd::gcd {

/// Identifies which *physical* buffer an access touched (the paper's Figure 1:
/// two fixed arrays; swap(X, Y) only exchanges pointers).
enum class Buffer : std::uint8_t { kA = 0, kB = 1 };

/// Zero-cost policy for production runs.
struct NullTracer {
  static constexpr bool enabled = false;
  void read(Buffer, std::size_t) noexcept {}
  void write(Buffer, std::size_t) noexcept {}
  void mark() noexcept {}  ///< called at the top of every algorithm iteration
};

/// Counts limb-granularity reads/writes (validates the 3·s/d claim).
struct CountTracer {
  static constexpr bool enabled = true;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t iterations = 0;
  void read(Buffer, std::size_t) noexcept { ++reads; }
  void write(Buffer, std::size_t) noexcept { ++writes; }
  void mark() noexcept { ++iterations; }
  std::uint64_t total() const noexcept { return reads + writes; }
  void reset() noexcept { reads = writes = iterations = 0; }
};

/// Records the full logical address sequence: one entry per limb access.
/// Logical address = buffer * stride + index, matching how the bulk executor
/// lays a thread's working set out in memory. Replayed by the UMM simulator
/// and diffed across threads by the obliviousness analyzer.
struct AddressTracer {
  static constexpr bool enabled = true;

  struct Access {
    std::uint32_t address;  ///< logical limb address within this thread
    bool is_write;
  };

  explicit AddressTracer(std::size_t buffer_limbs = 256)
      : stride(buffer_limbs) {}

  std::size_t stride;
  std::vector<Access> accesses;
  /// accesses-array offset where each algorithm iteration begins; lets the
  /// obliviousness analyzer align threads iteration-by-iteration.
  std::vector<std::uint32_t> iteration_starts;

  void mark() { iteration_starts.push_back(std::uint32_t(accesses.size())); }
  void read(Buffer buf, std::size_t index) {
    accesses.push_back({std::uint32_t(std::size_t(buf) * stride + index), false});
  }
  void write(Buffer buf, std::size_t index) {
    accesses.push_back({std::uint32_t(std::size_t(buf) * stride + index), true});
  }
};

}  // namespace bulkgcd::gcd
