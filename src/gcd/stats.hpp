// Per-run statistics for the Euclidean algorithm family. Table IV is a mean
// over `iterations`; §V's β-probability claim is `beta_nonzero / iterations`;
// the approx-case histogram backs the case-frequency ablation.
#pragma once

#include <array>
#include <cstdint>

namespace bulkgcd::gcd {

/// Which branch of the paper's approx(X, Y) fired (Section III).
enum class ApproxCase : std::uint8_t {
  k1,    ///< X fits in <= 2 words: exact quotient
  k2A,   ///< Y one word, x1 >= y1
  k2B,   ///< Y one word, x1 < y1
  k3A,   ///< Y two words, x1x2 >= y1y2
  k3B,   ///< Y two words, x1x2 < y1y2
  k4A,   ///< both > 2 words, x1x2 > y1y2
  k4B,   ///< both > 2 words, x1x2 <= y1y2, lX > lY
  k4C,   ///< both > 2 words, x1x2 <= y1y2, lX == lY -> (1, 0)
  kCount
};

struct GcdStats {
  std::uint64_t iterations = 0;     ///< do-while loop passes
  std::uint64_t swaps = 0;          ///< pointer swaps executed
  std::uint64_t beta_nonzero = 0;   ///< approx returned beta > 0
  std::uint64_t divisions = 0;      ///< hardware 2d-bit divisions issued
  std::array<std::uint64_t, std::size_t(ApproxCase::kCount)> approx_cases{};

  void count_case(ApproxCase c) noexcept { ++approx_cases[std::size_t(c)]; }

  GcdStats& operator+=(const GcdStats& other) noexcept {
    iterations += other.iterations;
    swaps += other.swaps;
    beta_nonzero += other.beta_nonzero;
    divisions += other.divisions;
    for (std::size_t i = 0; i < approx_cases.size(); ++i) {
      approx_cases[i] += other.approx_cases[i];
    }
    return *this;
  }

  friend bool operator==(const GcdStats&, const GcdStats&) noexcept = default;
};

constexpr const char* to_string(ApproxCase c) noexcept {
  switch (c) {
    case ApproxCase::k1: return "1";
    case ApproxCase::k2A: return "2-A";
    case ApproxCase::k2B: return "2-B";
    case ApproxCase::k3A: return "3-A";
    case ApproxCase::k3B: return "3-B";
    case ApproxCase::k4A: return "4-A";
    case ApproxCase::k4B: return "4-B";
    case ApproxCase::k4C: return "4-C";
    default: return "?";
  }
}

}  // namespace bulkgcd::gcd
