// The paper's quotient approximation (Section III).
//
// approx(X, Y) returns (α, β) with α·D^β ≤ Q = ⌊X/Y⌋, computed from at most
// the top two d-bit words of each operand with a single 2d-bit hardware
// division. Case analysis follows the paper exactly (Cases 1, 2-A/B, 3-A/B,
// 4-A/B/C); the underflow-free guarantee α·D^β ≤ Q is property-tested against
// GMP in tests/gcd_approx_test.cpp.
//
// Spans are little-endian, so the paper's most-significant word x1 is
// x[lx-1] and the two-word value x1x2 is (x[lx-1] << d) | x[lx-2].
// Generic over limb accessors (contiguous pointers or the SIMT engine's
// column-strided views).
#pragma once

#include <cassert>
#include <cstddef>

#include "gcd/kernels.hpp"
#include "gcd/stats.hpp"
#include "mp/limb_traits.hpp"

namespace bulkgcd::gcd {

template <mp::LimbType Limb>
struct ApproxResult {
  typename mp::LimbTraits<Limb>::Wide alpha;  ///< Wide: Case 1 can exceed d bits
  std::size_t beta;
  ApproxCase which;
};

/// Top-two-word value ⟨x1 x2⟩ of a (normalized, lx >= 2) span.
template <LimbAccessor XA>
constexpr auto top_two_words(const XA& x, std::size_t lx) noexcept {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  return (Wide(x[lx - 1]) << mp::limb_bits<Limb>) | x[lx - 2];
}

/// approx(X, Y) for normalized spans with X >= Y > 0.
/// Every branch issues exactly one Wide division (counted by callers for the
/// divisions statistic).
template <LimbAccessor XA, LimbAccessor YA>
constexpr ApproxResult<accessor_limb_t<XA>> approx(const XA& x, std::size_t lx,
                                                   const YA& y,
                                                   std::size_t ly) noexcept {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  assert(lx >= ly && ly >= 1);

  if (lx <= 2) {  // Case 1: both fit in a Wide — exact quotient
    const Wide xv = lx == 2 ? top_two_words(x, lx) : Wide(x[0]);
    const Wide yv = ly == 2 ? top_two_words(y, ly) : Wide(y[0]);
    return {xv / yv, 0, ApproxCase::k1};
  }

  if (ly == 1) {
    if (x[lx - 1] >= y[0]) {  // Case 2-A
      return {Wide(x[lx - 1]) / y[0], lx - 1, ApproxCase::k2A};
    }
    // Case 2-B
    return {top_two_words(x, lx) / y[0], lx - 2, ApproxCase::k2B};
  }

  const Wide x12 = top_two_words(x, lx);
  const Wide y12 = top_two_words(y, ly);

  if (ly == 2) {
    if (x12 >= y12) {  // Case 3-A
      return {x12 / y12, lx - 2, ApproxCase::k3A};
    }
    // Case 3-B
    return {x12 / (Wide(y[ly - 1]) + 1), lx - 3, ApproxCase::k3B};
  }

  if (x12 > y12) {  // Case 4-A
    return {x12 / (y12 + 1), lx - ly, ApproxCase::k4A};
  }
  if (lx > ly) {  // Case 4-B
    return {x12 / (Wide(y[ly - 1]) + 1), lx - ly - 1, ApproxCase::k4B};
  }
  return {1, 0, ApproxCase::k4C};  // Case 4-C: values nearly equal
}

/// The restricted approx of Section V: when computing GCDs of RSA moduli with
/// early termination, X and Y always keep at least s/2 bits, so only Case 4
/// is ever reached and the CUDA kernel omits Cases 1-3. This is the variant
/// the SIMT bulk engine runs; it asserts the precondition in debug builds.
template <LimbAccessor XA, LimbAccessor YA>
constexpr ApproxResult<accessor_limb_t<XA>> approx_case4_only(
    const XA& x, std::size_t lx, const YA& y, std::size_t ly) noexcept {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  assert(lx >= ly && ly >= 3 && "Section-V kernel requires > 2-word operands");

  const Wide x12 = top_two_words(x, lx);
  const Wide y12 = top_two_words(y, ly);
  if (x12 > y12) return {x12 / (y12 + 1), lx - ly, ApproxCase::k4A};
  if (lx > ly) {
    return {x12 / (Wide(y[ly - 1]) + 1), lx - ly - 1, ApproxCase::k4B};
  }
  return {1, 0, ApproxCase::k4C};
}

}  // namespace bulkgcd::gcd
