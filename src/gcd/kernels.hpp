// Fused per-iteration update kernels for the Euclidean algorithm family.
//
// Section IV of the paper: each iteration of Binary / Fast Binary /
// Approximate Euclidean is implementable with one streaming pass that reads
// every limb of X and Y once and writes every limb of X once — 3·s/d + O(1)
// limb accesses — by folding the multiply, subtract and rshift into a single
// least-significant-first sweep with a one-limb lookahead. The β > 0 path of
// Approximate Euclidean needs an extra read stream of Y (4·s/d + O(1)).
//
// Kernels are generic over a limb *accessor* so the same source runs:
//   * Limb*                — contiguous scalar CPU execution;
//   * bulk::StridedAccessor — column-wise layout in the SIMT bulk engine
//     (limb i of lane t lives at base[i * lanes + t], the paper's Figure 3).
// They are also templated on a Tracer policy (gcd/tracer.hpp); NullTracer
// erases all instrumentation at compile time.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <type_traits>

#include "gcd/tracer.hpp"
#include "mp/limb_traits.hpp"

namespace bulkgcd::gcd {

/// Limb type produced by an accessor (raw pointers and strided accessors).
template <typename Acc>
using accessor_limb_t =
    std::remove_cvref_t<decltype(std::declval<const Acc&>()[std::size_t{0}])>;

template <typename Acc>
concept LimbAccessor = mp::LimbType<accessor_limb_t<Acc>>;

/// normalized_size / strip helpers over accessors (mirrors mp/span_ops.hpp,
/// which only handles contiguous spans).
template <LimbAccessor XA>
constexpr std::size_t acc_normalized_size(const XA& x, std::size_t n) noexcept {
  while (n > 0 && x[n - 1] == 0) --n;
  return n;
}

template <LimbAccessor XA, LimbAccessor YA>
constexpr int acc_compare(const XA& x, std::size_t lx, const YA& y,
                          std::size_t ly) noexcept {
  if (lx != ly) return lx < ly ? -1 : 1;
  for (std::size_t i = lx; i-- > 0;) {
    const auto xi = x[i];
    const auto yi = y[i];
    if (xi != yi) return xi < yi ? -1 : 1;
  }
  return 0;
}

/// In-place strip of trailing zero bits (the paper's rshift). Returns the new
/// size. Generic over accessors; two passes (find + shift).
template <LimbAccessor XA>
std::size_t acc_strip_trailing_zeros(XA x, std::size_t n) noexcept {
  using Limb = accessor_limb_t<XA>;
  constexpr int LB = mp::limb_bits<Limb>;
  n = acc_normalized_size(x, n);
  if (n == 0) return 0;
  std::size_t limb_shift = 0;
  while (x[limb_shift] == 0) ++limb_shift;
  const int bit_shift = std::countr_zero(x[limb_shift]);
  if (limb_shift == 0 && bit_shift == 0) return n;
  const std::size_t m = n - limb_shift;
  if (bit_shift == 0) {
    for (std::size_t i = 0; i < m; ++i) x[i] = x[i + limb_shift];
  } else {
    for (std::size_t i = 0; i + 1 < m; ++i) {
      x[i] = Limb(x[i + limb_shift] >> bit_shift) |
             Limb(x[i + limb_shift + 1] << (LB - bit_shift));
    }
    x[m - 1] = Limb(x[n - 1] >> bit_shift);
  }
  return acc_normalized_size(x, m);
}

/// Rare-path fallback for fused_submul_strip when the low limb of X − Y·α is
/// zero (trailing-zero run of >= d bits, probability ~2^-d per iteration):
/// plain two-pass subtract-multiply then strip.
template <LimbAccessor XA, LimbAccessor YA, typename Tracer>
std::size_t submul_strip_slow(XA x, std::size_t lx, const YA& y, std::size_t ly,
                              accessor_limb_t<XA> alpha, Tracer& tracer,
                              Buffer xbuf, Buffer ybuf) {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  constexpr int LB = mp::limb_bits<Limb>;
  constexpr Wide kMask = mp::limb_base<Limb> - 1;

  Wide mul_carry = 0;
  Wide borrow = 0;
  for (std::size_t i = 0; i < lx; ++i) {
    tracer.read(xbuf, i);
    Limb yi = 0;
    if (i < ly) {
      tracer.read(ybuf, i);
      yi = y[i];
    }
    const Wide p = Wide(yi) * alpha + mul_carry;
    mul_carry = p >> LB;
    const Wide diff = Wide(x[i]) - (p & kMask) - borrow;
    x[i] = Limb(diff);
    tracer.write(xbuf, i);
    borrow = (diff >> LB) & 1u;
  }
  assert(borrow == 0 && mul_carry == 0 && "X - Y*alpha must be non-negative");
  const std::size_t stripped = acc_strip_trailing_zeros(x, lx);
  if constexpr (Tracer::enabled) {  // charge the extra strip pass honestly
    for (std::size_t i = 0; i < lx; ++i) tracer.read(xbuf, i);
    for (std::size_t i = 0; i < stripped; ++i) tracer.write(xbuf, i);
  }
  return stripped;
}

/// X ← rshift(X − Y·α) in one least-significant-first streaming pass.
/// Preconditions: α odd, X, Y odd, X ≥ Y·α (so the difference is even and
/// non-negative). Returns the new normalized size of X (0 if X == Y·α).
template <LimbAccessor XA, LimbAccessor YA, typename Tracer = NullTracer>
std::size_t fused_submul_strip(XA x, std::size_t lx, const YA& y, std::size_t ly,
                               accessor_limb_t<XA> alpha, Tracer& tracer,
                               Buffer xbuf = Buffer::kA,
                               Buffer ybuf = Buffer::kB) {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  constexpr int LB = mp::limb_bits<Limb>;
  constexpr Wide kMask = mp::limb_base<Limb> - 1;
  assert(lx >= ly && ly >= 1);
  assert((alpha & 1u) != 0 && "quotient must be forced odd");

  // First difference limb decides the shift distance r.
  tracer.read(xbuf, 0);
  tracer.read(ybuf, 0);
  Wide p = Wide(y[0]) * alpha;
  Wide mul_carry = p >> LB;
  Wide diff = Wide(x[0]) - (p & kMask);
  Limb d_prev = Limb(diff);
  Wide borrow = (diff >> LB) & 1u;

  if (d_prev == 0) {
    // Trailing zeros span a whole limb or the result is zero: rare path.
    return submul_strip_slow(x, lx, y, ly, alpha, tracer, xbuf, ybuf);
  }
  const int r = std::countr_zero(d_prev);  // 1 <= r < d (difference is even)
  assert(r >= 1 && "X and Y*alpha must both be odd");

  for (std::size_t i = 1; i < lx; ++i) {
    tracer.read(xbuf, i);
    Limb yi = 0;
    if (i < ly) {
      tracer.read(ybuf, i);
      yi = y[i];
    }
    p = Wide(yi) * alpha + mul_carry;
    mul_carry = p >> LB;
    diff = Wide(x[i]) - (p & kMask) - borrow;
    const Limb d = Limb(diff);
    borrow = (diff >> LB) & 1u;
    x[i - 1] = Limb(d_prev >> r) | Limb(d << (LB - r));
    tracer.write(xbuf, i - 1);
    d_prev = d;
  }
  assert(borrow == 0 && mul_carry == 0 && "X - Y*alpha must be non-negative");
  x[lx - 1] = Limb(d_prev >> r);
  tracer.write(xbuf, lx - 1);
  return acc_normalized_size(x, lx);
}

/// X ← rshift(X − Y·α·D^β + Y), the β > 0 path of Approximate Euclidean.
/// Preconditions: β >= 1 (so α·D^β is even and the adjusted value is even),
/// X, Y odd, X ≥ Y·α·D^β. X must have capacity lx + 1 limbs.
/// Returns the new normalized size of X.
template <LimbAccessor XA, LimbAccessor YA, typename Tracer = NullTracer>
std::size_t fused_submul_shifted_add_strip(XA x, std::size_t lx, const YA& y,
                                           std::size_t ly,
                                           accessor_limb_t<XA> alpha,
                                           std::size_t beta, Tracer& tracer,
                                           Buffer xbuf = Buffer::kA,
                                           Buffer ybuf = Buffer::kB) {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  using WideS = typename mp::LimbTraits<Limb>::WideS;
  constexpr int LB = mp::limb_bits<Limb>;
  constexpr Wide kMask = mp::limb_base<Limb> - 1;
  assert(beta >= 1 && lx + 1 >= ly + beta);

  // Streaming evaluation of X + Y − (Y·α) << β·d limbs. Per-limb value is
  // x_i + y_i − m_i + carry with carry ∈ {−1, 0, 1}; WideS holds the range.
  Wide mul_carry = 0;
  WideS carry = 0;
  for (std::size_t i = 0; i <= lx; ++i) {
    Limb xi = 0;
    if (i < lx) {
      tracer.read(xbuf, i);
      xi = x[i];
    }
    Limb yi = 0;
    if (i < ly) {
      tracer.read(ybuf, i);
      yi = y[i];
    }
    Limb mi = 0;
    if (i >= beta && i - beta < ly) {
      tracer.read(ybuf, i - beta);  // second read stream of Y (the 4th s/d)
      const Wide prod = Wide(y[i - beta]) * alpha + mul_carry;
      mul_carry = prod >> LB;
      mi = Limb(prod & kMask);
    } else if (i >= beta) {
      mi = Limb(mul_carry & kMask);
      mul_carry >>= LB;
    }
    const WideS acc = WideS(Wide(xi)) + WideS(Wide(yi)) - WideS(Wide(mi)) + carry;
    x[i] = Limb(acc);
    tracer.write(xbuf, i);
    carry = WideS(acc >> LB);  // floor division by the base
  }
  assert(carry == 0 && mul_carry == 0 && "X + Y - Y*alpha*D^beta must fit");
  const std::size_t n = acc_normalized_size(x, lx + 1);
  const std::size_t stripped = acc_strip_trailing_zeros(x, n);
  if constexpr (Tracer::enabled) {
    for (std::size_t i = 0; i < n; ++i) tracer.read(xbuf, i);
    for (std::size_t i = 0; i < stripped; ++i) tracer.write(xbuf, i);
  }
  return stripped;
}

/// X ← X / 2 (Binary Euclidean even case). Requires X even, lx >= 1.
template <LimbAccessor XA, typename Tracer = NullTracer>
std::size_t halve(XA x, std::size_t lx, Tracer& tracer,
                  Buffer xbuf = Buffer::kA) {
  using Limb = accessor_limb_t<XA>;
  constexpr int LB = mp::limb_bits<Limb>;
  assert(lx >= 1 && (x[0] & 1u) == 0);
  tracer.read(xbuf, 0);
  Limb prev = x[0];
  for (std::size_t i = 1; i < lx; ++i) {
    tracer.read(xbuf, i);
    const Limb cur = x[i];
    x[i - 1] = Limb(prev >> 1) | Limb(cur << (LB - 1));
    tracer.write(xbuf, i - 1);
    prev = cur;
  }
  x[lx - 1] = Limb(prev >> 1);
  tracer.write(xbuf, lx - 1);
  return acc_normalized_size(x, lx);
}

/// X ← (X − Y) / 2 (Binary Euclidean odd-odd case). Requires X ≥ Y, both odd.
template <LimbAccessor XA, LimbAccessor YA, typename Tracer = NullTracer>
std::size_t sub_halve(XA x, std::size_t lx, const YA& y, std::size_t ly,
                      Tracer& tracer, Buffer xbuf = Buffer::kA,
                      Buffer ybuf = Buffer::kB) {
  using Limb = accessor_limb_t<XA>;
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  constexpr int LB = mp::limb_bits<Limb>;
  assert(lx >= ly && ly >= 1);

  tracer.read(xbuf, 0);
  tracer.read(ybuf, 0);
  Wide diff = Wide(x[0]) - y[0];
  Limb d_prev = Limb(diff);
  Wide borrow = (diff >> LB) & 1u;
  for (std::size_t i = 1; i < lx; ++i) {
    tracer.read(xbuf, i);
    Limb yi = 0;
    if (i < ly) {
      tracer.read(ybuf, i);
      yi = y[i];
    }
    diff = Wide(x[i]) - yi - borrow;
    const Limb d = Limb(diff);
    borrow = (diff >> LB) & 1u;
    x[i - 1] = Limb(d_prev >> 1) | Limb(d << (LB - 1));
    tracer.write(xbuf, i - 1);
    d_prev = d;
  }
  assert(borrow == 0 && "X must be >= Y");
  x[lx - 1] = Limb(d_prev >> 1);
  tracer.write(xbuf, lx - 1);
  return acc_normalized_size(x, lx);
}

/// Most-significant-first comparison as in Section IV: sizes first (registers,
/// no memory traffic), then words from the top; with random words the result
/// is decided after O(1) reads with overwhelming probability.
template <LimbAccessor XA, LimbAccessor YA, typename Tracer = NullTracer>
int compare_traced(const XA& x, std::size_t lx, const YA& y, std::size_t ly,
                   Tracer& tracer, Buffer xbuf = Buffer::kA,
                   Buffer ybuf = Buffer::kB) {
  if (lx != ly) return lx < ly ? -1 : 1;
  for (std::size_t i = lx; i-- > 0;) {
    tracer.read(xbuf, i);
    tracer.read(ybuf, i);
    const auto xi = x[i];
    const auto yi = y[i];
    if (xi != yi) return xi < yi ? -1 : 1;
  }
  return 0;
}

}  // namespace bulkgcd::gcd
