// Lehmer's GCD algorithm — the classic fast *CPU* multiword GCD (Knuth
// 4.5.2 Algorithm L / HAC 14.57) that the paper does not evaluate. Included
// as an extension baseline: like Approximate Euclidean it replaces multiword
// divisions with machine-word arithmetic, but it simulates a whole RUN of
// Euclid steps on the leading bits (accumulating a 2x2 cofactor matrix) and
// then applies the matrix with two multiword combinations. Comparing the two
// quantifies what the paper's simpler one-step approximation gives up —
// and what it wins: Lehmer's matrix application is *not* a 3·s/d streaming
// pass, which is exactly why it is less attractive on a GPU.
#pragma once

#include "gcd/stats.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::gcd {

struct LehmerStats {
  std::uint64_t window_rounds = 0;    ///< leading-bits windows processed
  std::uint64_t simulated_steps = 0;  ///< Euclid steps done in 64-bit regs
  std::uint64_t fallback_divisions = 0;  ///< full multiword divisions needed
};

/// gcd(x, y) by Lehmer's algorithm. Handles arbitrary non-negative inputs.
mp::BigInt gcd_lehmer(mp::BigInt x, mp::BigInt y, LehmerStats* stats = nullptr);

}  // namespace bulkgcd::gcd
