#include "gcd/reference.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace bulkgcd::gcd {

namespace {

using mp::BigInt;

std::size_t words_at(const BigInt& v, unsigned d) {
  return (v.bit_length() + d - 1) / d;
}

/// Value of the top two d-bit words of v (just the value when it has <= 2
/// words). Fits u64 for d <= 32.
std::uint64_t top2(const BigInt& v, unsigned d) {
  const std::size_t l = words_at(v, d);
  if (l <= 2) return v.to_u64();
  return (v >> ((l - 2) * d)).to_u64();
}

std::uint64_t top1(const BigInt& v, unsigned d) {
  const std::size_t l = words_at(v, d);
  return (v >> ((l - 1) * d)).to_u64();
}

bool keep_going(const BigInt& y, std::size_t early_bits) {
  if (y.is_zero()) return false;
  return early_bits == 0 || y.bit_length() >= early_bits;
}

void finish(RefRun& run, BigInt& x, const BigInt& y, std::size_t early_bits) {
  run.early_coprime = early_bits > 0 && !y.is_zero();
  run.gcd = std::move(x);
}

}  // namespace

RefApprox ref_approx(const BigInt& x, const BigInt& y, unsigned d) {
  if (d < 2 || d > 32) throw std::invalid_argument("ref_approx: need 2 <= d <= 32");
  assert(x >= y && !y.is_zero());
  const std::size_t lx = words_at(x, d);
  const std::size_t ly = words_at(y, d);

  if (lx <= 2) return {x.to_u64() / y.to_u64(), 0, ApproxCase::k1};
  if (ly == 1) {
    const std::uint64_t y1 = y.to_u64();
    const std::uint64_t x1 = top1(x, d);
    if (x1 >= y1) return {x1 / y1, lx - 1, ApproxCase::k2A};
    return {top2(x, d) / y1, lx - 2, ApproxCase::k2B};
  }
  const std::uint64_t x12 = top2(x, d);
  const std::uint64_t y12 = top2(y, d);
  if (ly == 2) {
    if (x12 >= y12) return {x12 / y12, lx - 2, ApproxCase::k3A};
    return {x12 / (top1(y, d) + 1), lx - 3, ApproxCase::k3B};
  }
  if (x12 > y12) return {x12 / (y12 + 1), lx - ly, ApproxCase::k4A};
  if (lx > ly) return {x12 / (top1(y, d) + 1), lx - ly - 1, ApproxCase::k4B};
  return {1, 0, ApproxCase::k4C};
}

RefRun ref_original(BigInt x, BigInt y, const RefOptions& opt) {
  RefRun run;
  if (x < y) std::swap(x, y);
  while (keep_going(y, opt.early_bits)) {
    ++run.stats.iterations;
    ++run.stats.divisions;
    if (opt.keep_trace) {
      auto q = (x / y).to_u64();
      run.trace.push_back({x, y, q, 0, 0, ApproxCase::k1});
    }
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
    ++run.stats.swaps;
  }
  finish(run, x, y, opt.early_bits);
  return run;
}

RefRun ref_fast(BigInt x, BigInt y, const RefOptions& opt) {
  RefRun run;
  if (x < y) std::swap(x, y);
  while (keep_going(y, opt.early_bits)) {
    ++run.stats.iterations;
    ++run.stats.divisions;
    BigInt q = x / y;
    if (q.is_even()) q -= BigInt(1);
    if (opt.keep_trace) {
      run.trace.push_back({x, y, q.to_u64(), 0, 0, ApproxCase::k1});
    }
    x -= y * q;
    x.strip_trailing_zeros();
    if (x < y) {
      std::swap(x, y);
      ++run.stats.swaps;
    }
  }
  finish(run, x, y, opt.early_bits);
  return run;
}

RefRun ref_binary(BigInt x, BigInt y, const RefOptions& opt) {
  RefRun run;
  if (x < y) std::swap(x, y);
  while (keep_going(y, opt.early_bits)) {
    ++run.stats.iterations;
    if (opt.keep_trace) run.trace.push_back({x, y, 0, 0, 0, ApproxCase::k1});
    if (x.is_even()) {
      x >>= 1;
    } else if (y.is_even()) {
      y >>= 1;
    } else {
      x -= y;
      x >>= 1;
    }
    if (x < y) {
      std::swap(x, y);
      ++run.stats.swaps;
    }
  }
  finish(run, x, y, opt.early_bits);
  return run;
}

RefRun ref_fast_binary(BigInt x, BigInt y, const RefOptions& opt) {
  RefRun run;
  if (x < y) std::swap(x, y);
  while (keep_going(y, opt.early_bits)) {
    ++run.stats.iterations;
    if (opt.keep_trace) run.trace.push_back({x, y, 0, 0, 0, ApproxCase::k1});
    x -= y;
    x.strip_trailing_zeros();
    if (x < y) {
      std::swap(x, y);
      ++run.stats.swaps;
    }
  }
  finish(run, x, y, opt.early_bits);
  return run;
}

RefRun ref_approximate(BigInt x, BigInt y, unsigned d, const RefOptions& opt) {
  RefRun run;
  if (x < y) std::swap(x, y);
  while (keep_going(y, opt.early_bits)) {
    ++run.stats.iterations;
    ++run.stats.divisions;
    const RefApprox a = ref_approx(x, y, d);
    run.stats.count_case(a.which);
    if (a.beta == 0) {
      std::uint64_t alpha = a.alpha;
      if (alpha % 2 == 0) --alpha;  // force odd
      // Trace records α as used (the paper's Table III lists the odd-forced
      // value for β = 0 rows).
      if (opt.keep_trace) run.trace.push_back({x, y, 0, alpha, 0, a.which});
      x -= y * BigInt(alpha);
      x.strip_trailing_zeros();
    } else {
      if (opt.keep_trace) {
        run.trace.push_back({x, y, 0, a.alpha, a.beta, a.which});
      }
      ++run.stats.beta_nonzero;
      // X ← rshift(X − Y·α·D^β + Y)
      x += y;
      x -= (y * BigInt(a.alpha)) << (a.beta * d);
      x.strip_trailing_zeros();
    }
    if (x < y) {
      std::swap(x, y);
      ++run.stats.swaps;
    }
  }
  finish(run, x, y, opt.early_bits);
  return run;
}

}  // namespace bulkgcd::gcd
