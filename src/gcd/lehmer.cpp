#include "gcd/lehmer.hpp"

#include <cstdlib>
#include <utility>

namespace bulkgcd::gcd {

namespace {

using mp::BigInt;

/// a·x + b·y where exactly one of a, b may be negative and the result is
/// guaranteed non-negative (Lehmer's cofactor invariant).
BigInt signed_combo(std::int64_t a, const BigInt& x, std::int64_t b,
                    const BigInt& y) {
  BigInt positive, negative;
  if (a >= 0) {
    positive = x * BigInt(std::uint64_t(a));
  } else {
    negative = x * BigInt(std::uint64_t(-a));
  }
  if (b >= 0) {
    positive += y * BigInt(std::uint64_t(b));
  } else {
    negative += y * BigInt(std::uint64_t(-b));
  }
  return positive - negative;
}

/// Top `window` bits of v aligned at shift k (v >> k), as u64.
std::uint64_t top_bits(const BigInt& v, std::size_t k) {
  return (v >> k).to_u64();
}

constexpr int kWindowBits = 62;  // leaves headroom for int64 cofactor math

}  // namespace

BigInt gcd_lehmer(BigInt x, BigInt y, LehmerStats* stats) {
  LehmerStats local;
  LehmerStats& st = stats ? *stats : local;

  if (x < y) std::swap(x, y);

  while (y.bit_length() > 64) {
    ++st.window_rounds;
    const std::size_t k = x.bit_length() - kWindowBits;
    std::int64_t xh = std::int64_t(top_bits(x, k));
    std::int64_t yh = std::int64_t(top_bits(y, k));

    // Simulate Euclid on the leading bits, tracking the cofactor matrix
    // (A B; C D) so that (xh, yh) ≈ (A·x + B·y, C·x + D·y) >> k.
    std::int64_t A = 1, B = 0, C = 0, D = 1;
    while (true) {
      if (yh + C == 0 || yh + D == 0) break;
      const std::int64_t q = (xh + A) / (yh + C);
      if (q != (xh + B) / (yh + D)) break;  // quotient not certain
      if (q > (std::int64_t{1} << 30)) break;  // keep cofactors in int64
      // (xh, yh) ← (yh, xh − q·yh), same row operation on the matrix.
      std::int64_t t = A - q * C; A = C; C = t;
      t = B - q * D; B = D; D = t;
      t = xh - q * yh; xh = yh; yh = t;
      ++st.simulated_steps;
    }

    if (B == 0) {
      // No certain progress from the window (e.g. y much shorter than x):
      // fall back to one exact multiword division step.
      ++st.fallback_divisions;
      BigInt r = x % y;
      x = std::move(y);
      y = std::move(r);
    } else {
      BigInt nx = signed_combo(A, x, B, y);
      BigInt ny = signed_combo(C, x, D, y);
      x = std::move(nx);
      y = std::move(ny);
      if (x < y) std::swap(x, y);
    }
  }

  // Tail: y fits in 64 bits. One multiword reduction, then machine words.
  if (y.is_zero()) return x;
  std::uint64_t ylo = y.to_u64();
  std::uint64_t xlo;
  if (x.bit_length() > 64) {
    ++st.fallback_divisions;
    xlo = (x % y).to_u64();
  } else {
    xlo = x.to_u64();
  }
  while (ylo != 0) {
    const std::uint64_t r = xlo % ylo;
    xlo = ylo;
    ylo = r;
    ++st.simulated_steps;
  }
  return BigInt(xlo);
}

}  // namespace bulkgcd::gcd
